// Minimal --key=value command-line flag parsing for benches and examples.
//
// Supported forms: --key=value, --key value, and bare --flag (boolean true).
// Unknown flags abort with a message listing what was seen, so typos in
// bench invocations fail loudly instead of silently running the default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace lunule {

class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::string get(std::string_view key,
                                std::string_view def = "") const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(std::string_view key, double def) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool def = false) const;

  /// Aborts if any parsed flag was never queried through the getters above.
  /// Call at the end of flag handling to catch misspelled options.
  void check_unused() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> used_;
};

}  // namespace lunule
