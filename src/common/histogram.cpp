#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lunule {

int Histogram::bucket_of(double value) {
  if (value < 1.0) return 0;
  // ilogb yields the exact floored binary exponent.  Truncating log2()
  // instead is wrong at power-of-two boundaries: a correctly-rounded
  // log2(2^k - ulp) can round *up* to exactly k, which put the value in
  // bucket k*16 with a negative fractional offset — off by a whole
  // power-of-two band and non-monotonic with its neighbours.
  const int exponent = std::min(62, std::ilogb(value));
  const double lower = std::exp2(exponent);
  const double frac = (value - lower) / lower;  // [0, 1)
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>(frac * kSubBuckets));
  return std::min(kBuckets - 1, exponent * kSubBuckets + sub);
}

double Histogram::bucket_value(int bucket) {
  const int exponent = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  const double lower = std::exp2(exponent);
  // Bucket midpoint.
  return lower * (1.0 + (static_cast<double>(sub) + 0.5) / kSubBuckets);
}

void Histogram::add(double value, std::uint64_t count) {
  LUNULE_CHECK(value >= 0.0);
  buckets_[static_cast<std::size_t>(bucket_of(value))] += count;
  total_ += count;
  sum_ += value * static_cast<double>(count);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double Histogram::percentile(double p) const {
  LUNULE_CHECK(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return 0.0;
  // Rank of the value to report, at least 1 so p=0 returns the smallest
  // *observed* value's bucket rather than an empty bucket 0.
  const double target =
      std::max(1.0, p / 100.0 * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (static_cast<double>(seen) >= target) {
      // Bucket 0 also holds sub-1.0 values; clamp by the observed maximum
      // so tiny distributions do not overreport.
      return std::min(bucket_value(b), max_);
    }
  }
  return max_;
}

}  // namespace lunule
