// A named, uniformly sampled time series plus a container of related series.
//
// The metrics pipeline appends one sample per epoch (per-MDS IOPS, IF values,
// migrated inode counts, ...); report printers and the benches consume these
// to regenerate each figure of the paper as aligned text / CSV.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lunule {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void push(double v) { values_.push_back(v); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double at(std::size_t i) const { return values_.at(i); }
  [[nodiscard]] double back() const { return values_.back(); }

  /// Average over the whole series (0 if empty).
  [[nodiscard]] double average() const;
  /// Maximum over the whole series (0 if empty).
  [[nodiscard]] double maximum() const;
  /// Average over the trailing `n` samples.
  [[nodiscard]] double tail_average(std::size_t n) const;

  /// Downsamples into `buckets` bucket-averages (for compact printing).
  [[nodiscard]] std::vector<double> resampled(std::size_t buckets) const;

 private:
  std::string name_;
  std::vector<double> values_;
};

/// A bundle of equally sampled series sharing one time axis, e.g. one series
/// per MDS, or one series per balancer.
class SeriesBundle {
 public:
  SeriesBundle() = default;
  explicit SeriesBundle(double seconds_per_sample)
      : seconds_per_sample_(seconds_per_sample) {}

  TimeSeries& add(std::string name);
  [[nodiscard]] const TimeSeries& at(std::size_t i) const;
  [[nodiscard]] TimeSeries& at(std::size_t i);
  [[nodiscard]] const TimeSeries* find(std::string_view name) const;
  [[nodiscard]] std::size_t count() const { return series_.size(); }
  [[nodiscard]] double seconds_per_sample() const {
    return seconds_per_sample_;
  }
  [[nodiscard]] std::size_t length() const;

 private:
  double seconds_per_sample_ = 1.0;
  std::vector<TimeSeries> series_;
};

}  // namespace lunule
