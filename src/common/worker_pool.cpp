#include "common/worker_pool.h"

#include <algorithm>

#include "common/assert.h"

namespace lunule {

WorkerPool::WorkerPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  round_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::drain_round() {
  // Claim-and-run until the round's index space is exhausted.  Indices are
  // claimed under the mutex (the per-index work is orders of magnitude
  // heavier than the lock), and fn runs outside it.
  std::unique_lock<std::mutex> lock(mu_);
  while (next_index_ < round_n_) {
    const std::size_t i = next_index_++;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*fn_)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err) {
      errors_.push_back(err);
      error_indices_.push_back(i);
    }
    ++active_workers_;  // reused as the completed-index count per round
    if (active_workers_ == round_n_) round_done_.notify_all();
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_seq = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      round_start_.wait(
          lock, [&] { return stop_ || round_seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = round_seq_;
    }
    drain_round();
  }
}

void WorkerPool::run_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LUNULE_CHECK_MSG(fn_ == nullptr, "WorkerPool rounds cannot nest");
    fn_ = &fn;
    round_n_ = n;
    next_index_ = 0;
    active_workers_ = 0;
    errors_.clear();
    error_indices_.clear();
    ++round_seq_;
  }
  round_start_.notify_all();
  drain_round();  // the calling thread always participates
  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lock(mu_);
    round_done_.wait(lock, [&] { return active_workers_ == round_n_; });
    fn_ = nullptr;
    // Rethrow the error of the smallest index so the surfaced failure does
    // not depend on thread scheduling.
    std::size_t best = round_n_;
    for (std::size_t k = 0; k < error_indices_.size(); ++k) {
      if (error_indices_[k] < best) {
        best = error_indices_[k];
        first = errors_[k];
      }
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace lunule
