// Fixed-capacity ring buffer of numeric samples.
//
// Used for the per-subtree "cutting windows" of the Pattern Analyzer
// (Section 3.3): each directory keeps the visit counts of its last N epochs,
// and l_t / l_s are sums over that window.
#pragma once

#include <array>
#include <cstddef>
#include <numeric>

namespace lunule {

template <typename T, std::size_t N>
class RingBuffer {
  static_assert(N > 0);

 public:
  /// Appends a sample, evicting the oldest once full.
  void push(T value) {
    items_[head_] = value;
    head_ = (head_ + 1) % N;
    if (size_ < N) ++size_;
  }

  /// Number of samples currently held (<= N).
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] static constexpr std::size_t capacity() { return N; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Sum over the retained window.
  [[nodiscard]] T window_sum() const {
    T acc{};
    for (std::size_t i = 0; i < size_; ++i) acc += at(i);
    return acc;
  }

  /// i-th most recent sample; at(0) is the newest.
  [[nodiscard]] T at(std::size_t i) const {
    return items_[(head_ + N - 1 - i) % N];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::array<T, N> items_{};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lunule
