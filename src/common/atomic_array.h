// A growable array of 64-bit atomics.
//
// std::vector cannot hold std::atomic (not movable), so concurrent-read
// caches roll their own storage.  The contract here matches the simulator's
// phase structure: loads and stores may race freely (relaxed atomics — the
// packed authority cache only ever publishes values that every racing
// writer computes identically), but resize() is only legal during serial
// phases (namespace construction, epoch boundaries) when no reader is
// concurrent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace lunule {

class AtomicU64Array {
 public:
  AtomicU64Array() = default;

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] std::uint64_t load(std::size_t i) const {
    return data_[i].load(std::memory_order_relaxed);
  }

  void store(std::size_t i, std::uint64_t v) const {
    data_[i].store(v, std::memory_order_relaxed);
  }

  /// Grows to `n` entries, zero-filling the tail (no-op when already that
  /// large).  Serial phases only: reallocation is not guarded against
  /// concurrent readers.
  void resize(std::size_t n) {
    if (n <= size_) {
      size_ = n;
      return;
    }
    if (n > capacity_) {
      std::size_t cap = capacity_ == 0 ? 16 : capacity_;
      while (cap < n) cap *= 2;
      auto next = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
      for (std::size_t i = 0; i < size_; ++i) {
        next[i].store(data_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      }
      for (std::size_t i = size_; i < cap; ++i) {
        next[i].store(0, std::memory_order_relaxed);
      }
      data_ = std::move(next);
      capacity_ = cap;
    } else {
      for (std::size_t i = size_; i < n; ++i) {
        data_[i].store(0, std::memory_order_relaxed);
      }
    }
    size_ = n;
  }

  /// Zero-fills every entry (serial phases only).
  void fill_zero() {
    for (std::size_t i = 0; i < size_; ++i) {
      data_[i].store(0, std::memory_order_relaxed);
    }
  }

 private:
  // mutable-through-const is deliberate: the array backs caches that fill
  // from const lookup paths.
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace lunule
