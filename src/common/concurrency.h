// Process-wide worker-thread budget.
//
// Several layers spawn helper threads: run_scenarios() fans scenario
// configs out over a pool, and each simulation may itself run a sharded
// tick engine.  Without coordination, nesting multiplies
// (hardware_concurrency threads *per caller*) and oversubscribes the
// machine.  ConcurrencyBudget is a counter of *extra* worker threads (the
// calling thread is never counted — every caller can always make progress
// inline): acquire() grants between 0 and the requested number, release()
// returns them.  Grant size never affects results — every pool in the
// simulator is required to produce identical output for any worker count —
// so a starved caller simply runs serially.
#pragma once

#include <atomic>
#include <cstddef>

namespace lunule {

class ConcurrencyBudget {
 public:
  explicit ConcurrencyBudget(std::size_t total)
      : total_(total), available_(total) {}

  /// The process-wide budget, sized to hardware_concurrency - 1 extra
  /// workers (at least 1 so spawning is exercised even on tiny hosts).
  static ConcurrencyBudget& instance();

  /// Grants up to `want` extra worker threads; returns the number granted
  /// (possibly 0 — run inline then).
  [[nodiscard]] std::size_t acquire(std::size_t want);

  /// Returns `n` previously granted workers to the pool.
  void release(std::size_t n);

  /// Extra workers currently available (diagnostics / tests).
  [[nodiscard]] std::size_t available() const {
    return available_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  std::size_t total_;
  std::atomic<std::size_t> available_;
};

/// RAII grant: acquires up to `want` workers on construction, releases on
/// destruction.
class ConcurrencyGrant {
 public:
  explicit ConcurrencyGrant(std::size_t want,
                            ConcurrencyBudget& budget =
                                ConcurrencyBudget::instance())
      : budget_(budget), granted_(budget.acquire(want)) {}
  ~ConcurrencyGrant() { budget_.release(granted_); }
  ConcurrencyGrant(const ConcurrencyGrant&) = delete;
  ConcurrencyGrant& operator=(const ConcurrencyGrant&) = delete;

  [[nodiscard]] std::size_t granted() const { return granted_; }

 private:
  ConcurrencyBudget& budget_;
  std::size_t granted_;
};

}  // namespace lunule
