// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator draws from an explicitly seeded
// Rng instance so that a given scenario configuration reproduces bit-identical
// results across runs and machines.  The generator is xoshiro256**, seeded
// via splitmix64 (the construction recommended by the xoshiro authors); both
// are tiny, fast, and have no global state.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/assert.h"

namespace lunule {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (for hashing ids into streams).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// A draw stream seeded purely from a key: splitmix64 iterated from the
/// hashed key.  Used where a stochastic decision must depend only on *what*
/// is being decided (its stable key) and never on how many draws other
/// decisions consumed before it — e.g. sibling credits, whose draws under
/// the sharded tick engine would otherwise depend on cross-rank op order.
class HashStream {
 public:
  explicit HashStream(std::uint64_t key) : state_(key) {}

  std::uint64_t next_u64() { return splitmix64(state_); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via multiply-shift (the negligible
  /// Lemire bias is acceptable here; determinism is what matters).
  std::uint64_t next_below(std::uint64_t bound) {
    LUNULE_CHECK(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next_u64()) * bound) >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  /// Derives an independent child stream; used to give each component
  /// (workload, client, balancer) its own generator from one scenario seed.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    std::uint64_t s = state_[0] ^ mix64(stream_id + 0x9e3779b97f4a7c15ULL);
    return Rng(s);
  }

  /// Next raw 64-bit output.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    LUNULE_CHECK(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_between(std::int64_t lo, std::int64_t hi) {
    LUNULE_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Fisher–Yates shuffle of a span (deterministic given the stream state).
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lunule
