// Lightweight runtime checks that stay enabled in release builds.
//
// The simulator is deterministic; an invariant violation is always a bug, so
// we prefer an immediate, descriptive abort over silent corruption.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lunule::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "LUNULE_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace lunule::detail

/// Abort with a diagnostic if `expr` is false.  Always on.
#define LUNULE_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::lunule::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                   \
  } while (0)

/// Abort with a diagnostic and an explanatory message if `expr` is false.
#define LUNULE_CHECK_MSG(expr, msg)                                    \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::lunule::detail::check_failed(#expr, __FILE__, __LINE__, msg);  \
    }                                                                  \
  } while (0)
