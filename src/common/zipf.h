// Zipf-distributed sampling over a bounded universe [0, n).
//
// Used by the Filebench-Zipfian and Web workloads.  The paper's Filebench
// configuration follows the 80/20 rule ("80% of requests touch 20% of
// files"), which corresponds to a Zipf exponent near 0.83 for large n; the
// exponent is a constructor parameter so tests can sweep it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lunule {

/// Precomputed-CDF Zipf sampler.  O(n) memory, O(log n) per sample,
/// exact and deterministic.  Ranks are 0-based: rank 0 is the most popular.
class ZipfSampler {
 public:
  /// n: universe size (> 0); exponent: Zipf skew `s` (>= 0; 0 == uniform).
  ZipfSampler(std::uint64_t n, double exponent);

  /// Draws one item id in [0, n), where smaller ids are more popular.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t universe() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

  /// Probability mass of rank k (mainly for tests).
  [[nodiscard]] double pmf(std::uint64_t rank) const;

  /// Fraction of probability mass covered by the top `k` ranks.
  [[nodiscard]] double top_mass(std::uint64_t k) const;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
  double exponent_ = 0.0;
};

/// Solves (approximately) for the Zipf exponent that yields
/// `mass` of requests on the top `fraction` of an n-item universe,
/// e.g. zipf_exponent_for(0.2, 0.8, 10000) for the 80/20 rule.
[[nodiscard]] double zipf_exponent_for(double fraction, double mass,
                                       std::uint64_t n);

}  // namespace lunule
