#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lunule {

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent)
    : exponent_(exponent) {
  LUNULE_CHECK(n > 0);
  LUNULE_CHECK(exponent >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::uint64_t rank) const {
  LUNULE_CHECK(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double ZipfSampler::top_mass(std::uint64_t k) const {
  if (k == 0) return 0.0;
  return cdf_[std::min<std::uint64_t>(k, cdf_.size()) - 1];
}

double zipf_exponent_for(double fraction, double mass, std::uint64_t n) {
  LUNULE_CHECK(fraction > 0.0 && fraction < 1.0);
  LUNULE_CHECK(mass > 0.0 && mass < 1.0);
  LUNULE_CHECK(n >= 10);
  // Bisection on the exponent; top_mass is monotonically increasing in s.
  double lo = 0.0;
  double hi = 3.0;
  const auto top_k = static_cast<std::uint64_t>(
      std::max(1.0, fraction * static_cast<double>(n)));
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const ZipfSampler z(n, mid);
    if (z.top_mass(top_k) < mass) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace lunule
