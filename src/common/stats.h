// Descriptive statistics used throughout the balancers and the metrics
// pipeline: mean, corrected sample standard deviation, Coefficient of
// Variation (the building block of the paper's Imbalance Factor model,
// Eq. 1), percentiles, and simple linear regression (used by Algorithm 1
// to forecast an importer's future load, `fld`).
#pragma once

#include <cstddef>
#include <span>

namespace lunule {

[[nodiscard]] double mean(std::span<const double> xs);

/// Corrected (n-1) sample variance; 0 for fewer than two samples.
[[nodiscard]] double sample_variance(std::span<const double> xs);

[[nodiscard]] double sample_stddev(std::span<const double> xs);

/// Coefficient of Variation: sigma(xs) / mean(xs), per Eq. 1 of the paper.
/// Returns 0 when the mean is 0 (an all-idle cluster is perfectly balanced).
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

/// The supremum of CoV over non-negative n-vectors is sqrt(n): the
/// one-hot load vector.  Used to normalize CoV into [0, 1] (Eq. 3).
[[nodiscard]] double max_coefficient_of_variation(std::size_t n);

[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);
[[nodiscard]] double sum(std::span<const double> xs);

/// Linear-interpolated percentile of an *unsorted* input, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Ordinary-least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;

  [[nodiscard]] double at(double x) const { return slope * x + intercept; }
};

/// Fits y[i] against x = 0, 1, ..., n-1.  With fewer than two points the
/// fit is a constant (slope 0).  Used for the `fld` next-epoch forecast.
[[nodiscard]] LinearFit fit_linear(std::span<const double> ys);

/// Coefficient of determination (R^2) of observed ys against predicted ps.
[[nodiscard]] double r_squared(std::span<const double> ys,
                               std::span<const double> ps);

}  // namespace lunule
