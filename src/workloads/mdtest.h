// MDtest create program ("MD" of Table 1).
//
// Each client operates on its own initially empty directory and keeps
// creating empty files into it — a write-only, 100%-metadata workload used
// by many metadata studies.  The per-directory load is a stable create
// stream, and the directories grow without bound (the paper's runs ended
// after ~15 minutes when the MDSs ran out of memory).
#pragma once

#include "workloads/workload.h"

namespace lunule::workloads {

class MdtestCreateProgram final : public WorkloadProgram {
 public:
  /// dir: the client's private (empty) directory; creates: files to create
  /// before the job completes (0 = run until the simulation ends).
  MdtestCreateProgram(DirId dir, std::uint64_t creates)
      : dir_(dir), remaining_(creates), open_ended_(creates == 0) {}

  bool next(Op& out) override {
    if (!open_ended_) {
      if (remaining_ == 0) return false;
      --remaining_;
    }
    out.dir = dir_;
    out.file = 0;  // the MDS assigns the dentry slot on create
    out.kind = OpKind::kCreate;
    out.has_data = false;  // 100% metadata
    return true;
  }

  [[nodiscard]] std::uint64_t planned_meta_ops() const override {
    return open_ended_ ? 0 : remaining_;
  }

 private:
  DirId dir_;
  std::uint64_t remaining_;
  bool open_ended_;
};

}  // namespace lunule::workloads
