// Closed-loop client emulator.
//
// A client replays its workload program against the MDS cluster with a
// bounded issue rate and head-of-line blocking: when the authoritative MDS
// of its next operation is saturated (or the target subtree is frozen by a
// migration), the client stalls for the rest of the tick.  This closed loop
// is what couples aggregate throughput to load balance — a cluster whose
// load sits on one MDS serves at most one MDS's capacity, however many
// clients are running (the behaviour all of the paper's figures measure).
//
// The client also maintains a per-directory location cache mirroring the
// CephFS client's knowledge of subtree bounds: when the cached authority of
// a path is stale or unknown, the request is *forwarded* along the path's
// authority chain (each crossing charges a redirect to the MDS it bounces
// off), reproducing the forwarding overhead that penalizes the Dir-Hash
// baseline (Section 4.6, Figure 14).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "mds/cluster.h"
#include "mds/data_path.h"
#include "workloads/workload.h"

namespace lunule::workloads {

/// Binding of a client onto one rank's operation stream during a shard
/// phase of the sharded tick engine: the client may only issue operations
/// whose authoritative MDS is `rank`, and shared-state effects route
/// through `lane`.
struct ShardBinding {
  MdsId rank = kNoMds;
  mds::TickLane* lane = nullptr;
};

struct ClientParams {
  /// Maximal metadata operations issued per simulated second.
  double max_ops_per_tick = 150.0;
  /// First tick at which this client starts issuing.
  Tick start_tick = 0;
  /// Dentry-lease lifetime: cached subtree locations expire after this
  /// many seconds and the next access re-traverses the path (CephFS client
  /// leases default to tens of seconds).
  Tick lease_ticks = 30;
};

class Client {
 public:
  Client(std::uint32_t id, ClientParams params,
         std::unique_ptr<WorkloadProgram> program);

  /// Runs one simulation tick; returns the metadata ops served.
  ///
  /// Under the sharded engine the same tick may call this twice: once with
  /// a `shard` binding (rank-restricted stream, shared effects escrowed in
  /// the lane) and — when that call sets `*paused` — once more without a
  /// binding in the serial deferred pass.  The per-tick budget refill and
  /// the stall/active accounting fire exactly once per tick either way.
  std::uint32_t run_tick(mds::MdsCluster& cluster, mds::DataPath* data,
                         Tick now, const ShardBinding* shard = nullptr,
                         bool* paused = nullptr);

  /// The rank this client's next operation binds to for a shard phase, or
  /// kNoMds when the client must run in the serial deferred pass (no
  /// fetched op yet, pending data-path work, a serve that may be routed to
  /// a replica holder, or a create into a frag-pinned directory).
  [[nodiscard]] MdsId shard_rank(const mds::MdsCluster& cluster,
                                 Tick now) const;

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool started() const { return started_; }
  /// Tick at which the job finished (valid once done()).
  [[nodiscard]] Tick completion_tick() const { return completion_tick_; }
  [[nodiscard]] std::uint64_t meta_ops_completed() const { return meta_ops_; }
  [[nodiscard]] std::uint64_t data_ops_completed() const { return data_ops_; }
  [[nodiscard]] std::uint64_t forwards() const { return forwards_; }
  /// Ticks in which the client wanted to issue but served nothing —
  /// head-of-line blocked on a saturated/frozen MDS or a full data path.
  [[nodiscard]] std::uint64_t stalled_ticks() const { return stalled_; }
  /// Ticks in which the client was active (started and not yet done).
  [[nodiscard]] std::uint64_t active_ticks() const { return active_; }
  /// Fraction of active time spent fully stalled.
  [[nodiscard]] double stall_fraction() const {
    return active_ == 0 ? 0.0
                        : static_cast<double>(stalled_) /
                              static_cast<double>(active_);
  }
  /// Distribution of per-operation completion latency in ticks (1 = served
  /// in the tick it was issued; higher values count head-of-line blocking
  /// on saturated or frozen MDSs).
  [[nodiscard]] const Histogram& op_latency() const { return latency_; }
  [[nodiscard]] const ClientParams& params() const { return params_; }

 private:
  /// Resolves the op's authoritative MDS, counting and charging forwards
  /// when this client's location cache is stale along the path.
  MdsId resolve_with_forwards(mds::MdsCluster& cluster, const Op& op,
                              Tick now, mds::TickLane* lane);

  /// Rank that would serve `op` right now, or kNoMds when serving it needs
  /// shared state a shard phase must not touch.
  [[nodiscard]] MdsId op_rank(const mds::MdsCluster& cluster,
                              const Op& op) const;

  std::uint32_t id_;
  ClientParams params_;
  std::unique_ptr<WorkloadProgram> program_;

  double budget_ = 0.0;
  bool started_ = false;
  bool done_ = false;
  Tick completion_tick_ = -1;
  std::uint64_t meta_ops_ = 0;
  std::uint64_t data_ops_ = 0;
  std::uint64_t forwards_ = 0;
  std::uint64_t stalled_ = 0;
  std::uint64_t active_ = 0;

  bool have_op_ = false;
  Op op_{};
  bool pending_data_ = false;
  Tick op_first_attempt_ = -1;
  Histogram latency_;
  /// Last tick whose budget refill / active accounting already ran
  /// (guards against double-refill when a tick calls run_tick twice).
  Tick refill_tick_ = -1;
  /// Ops served so far in the current tick, across both calls.
  std::uint32_t tick_served_ = 0;

  // Location cache: last known authority per directory (kNoMds = unknown)
  // plus the tick the lease on that knowledge expires.
  std::vector<MdsId> auth_cache_;
  std::vector<Tick> lease_until_;
};

}  // namespace lunule::workloads
