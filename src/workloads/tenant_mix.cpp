#include "workloads/tenant_mix.h"

#include "common/assert.h"

namespace lunule::workloads {

TenantMixProgram::TenantMixProgram(
    std::shared_ptr<const std::vector<DirId>> tenant_dirs,
    std::uint32_t files_per_tenant, std::uint64_t requests,
    double create_fraction, std::shared_ptr<const ZipfSampler> sampler,
    Rng rng, double meta_ratio)
    : tenant_dirs_(std::move(tenant_dirs)),
      files_per_tenant_(files_per_tenant),
      remaining_files_(requests),
      create_fraction_(create_fraction),
      sampler_(std::move(sampler)),
      rng_(rng),
      pacer_(meta_ops_for_ratio(meta_ratio), /*with_data=*/true) {
  LUNULE_CHECK(tenant_dirs_ != nullptr && !tenant_dirs_->empty());
  LUNULE_CHECK(files_per_tenant_ > 0);
  LUNULE_CHECK(sampler_ != nullptr);
  LUNULE_CHECK(sampler_->universe() == tenant_dirs_->size());
  LUNULE_CHECK(create_fraction_ >= 0.0 && create_fraction_ <= 1.0);
}

std::uint64_t TenantMixProgram::planned_meta_ops() const {
  return static_cast<std::uint64_t>(static_cast<double>(remaining_files_) *
                                    pacer_.meta_ops_per_file());
}

bool TenantMixProgram::next(Op& out) {
  if (meta_left_ == 0) {
    if (remaining_files_ == 0) return false;
    --remaining_files_;
    // Tenant popularity is Zipf over the tenant universe, scattered so the
    // popular tenants are not a contiguous id prefix.
    const std::uint64_t rank = sampler_->sample(rng_);
    const auto pick = static_cast<std::size_t>(
        mix64(rank) % tenant_dirs_->size());
    current_.dir = (*tenant_dirs_)[pick];
    if (rng_.next_bool(create_fraction_)) {
      current_.kind = OpKind::kCreate;
      current_.file = 0;  // the MDS assigns the slot
    } else {
      current_.kind = OpKind::kLookup;
      current_.file =
          static_cast<FileIndex>(rng_.next_below(files_per_tenant_));
    }
    meta_left_ = pacer_.begin_file();
  }
  out = current_;
  --meta_left_;
  out.has_data = meta_left_ == 0;
  return true;
}

}  // namespace lunule::workloads
