// Workload programs: per-client metadata operation generators.
//
// A WorkloadProgram is a deterministic stream of operations replayed by one
// closed-loop client.  Each operation targets one file of one directory and
// is either a lookup-style metadata access or a create; an operation may
// additionally carry a data phase, which only matters when the scenario
// enables the data path (Figures 8, 10, 11).
//
// The per-workload ratio of metadata operations to data operations follows
// Table 1 of the paper (CNN 78.1%, NLP 92.8%, Web 57.2%, Zipf 50.0%,
// MDtest 100%): a program emits `meta_ops_per_file` metadata operations per
// file touched, the last of which carries the file's single data phase.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.h"

namespace lunule::workloads {

enum class OpKind : std::uint8_t {
  kLookup,  // metadata read (lookup/getattr/open/readdir position)
  kCreate,  // metadata write creating a new file
};

struct Op {
  DirId dir = kNoDir;
  FileIndex file = 0;  // ignored for kCreate (the MDS assigns the slot)
  OpKind kind = OpKind::kLookup;
  bool has_data = false;  // a data phase follows this metadata op
};

class WorkloadProgram {
 public:
  virtual ~WorkloadProgram() = default;

  /// Produces the next operation.  Returns false when the program (job)
  /// has finished; `out` is untouched in that case.
  virtual bool next(Op& out) = 0;

  /// Total metadata operations this program will emit (0 if open-ended).
  [[nodiscard]] virtual std::uint64_t planned_meta_ops() const { return 0; }
};

/// Emits fractional meta-ops-per-file deterministically: e.g. 3.57 yields
/// mostly 4-op files interleaved with 3-op files so the long-run average
/// matches.  The final op of each file carries the data phase.
class MetaOpPacer {
 public:
  explicit MetaOpPacer(double meta_ops_per_file, bool with_data)
      : per_file_(meta_ops_per_file), with_data_(with_data) {}

  /// Starts pacing a new file; returns the number of meta ops to emit.
  std::uint32_t begin_file() {
    carry_ += per_file_;
    const auto n = static_cast<std::uint32_t>(carry_);
    carry_ -= static_cast<double>(n);
    return n > 0 ? n : 1;
  }

  [[nodiscard]] bool with_data() const { return with_data_; }
  [[nodiscard]] double meta_ops_per_file() const { return per_file_; }

 private:
  double per_file_;
  bool with_data_;
  double carry_ = 0.0;
};

/// meta_ops_per_file value reproducing a Table 1 metadata-operation ratio
/// under the 1-data-op-per-file model: ratio = m / (m + 1).
[[nodiscard]] constexpr double meta_ops_for_ratio(double meta_ratio) {
  return meta_ratio / (1.0 - meta_ratio);
}

}  // namespace lunule::workloads
