#include "workloads/apache_log.h"

#include <charconv>
#include <istream>
#include <map>
#include <memory>
#include <ostream>

namespace lunule::workloads {

namespace {

/// Extracts "fileN" -> N; nullopt otherwise.
std::optional<FileIndex> parse_file_component(std::string_view name) {
  if (name.rfind("file", 0) != 0) return std::nullopt;
  name.remove_prefix(4);
  if (name.empty()) return std::nullopt;
  FileIndex value = 0;
  const auto [ptr, ec] =
      std::from_chars(name.data(), name.data() + name.size(), value);
  if (ec != std::errc{} || ptr != name.data() + name.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<LogEntry> parse_log_line(std::string_view line) {
  // host ident user [timestamp] "METHOD path PROTO" status bytes ...
  const std::size_t quote_open = line.find('"');
  if (quote_open == std::string_view::npos) return std::nullopt;
  const std::size_t quote_close = line.find('"', quote_open + 1);
  if (quote_close == std::string_view::npos) return std::nullopt;

  const std::string_view request =
      line.substr(quote_open + 1, quote_close - quote_open - 1);
  const std::size_t sp1 = request.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const std::size_t sp2 = request.find(' ', sp1 + 1);

  LogEntry entry;
  entry.method = std::string(request.substr(0, sp1));
  entry.path = std::string(
      sp2 == std::string_view::npos
          ? request.substr(sp1 + 1)
          : request.substr(sp1 + 1, sp2 - sp1 - 1));
  if (entry.path.empty() || entry.path[0] != '/') return std::nullopt;

  // Status and bytes follow the closing quote.
  std::string_view tail = line.substr(quote_close + 1);
  const auto skip_spaces = [&tail] {
    while (!tail.empty() && tail.front() == ' ') tail.remove_prefix(1);
  };
  skip_spaces();
  {
    const auto [ptr, ec] =
        std::from_chars(tail.data(), tail.data() + tail.size(), entry.status);
    if (ec != std::errc{}) return std::nullopt;
    tail.remove_prefix(static_cast<std::size_t>(ptr - tail.data()));
  }
  skip_spaces();
  if (!tail.empty() && tail.front() != '-') {
    const auto [ptr, ec] =
        std::from_chars(tail.data(), tail.data() + tail.size(), entry.bytes);
    if (ec != std::errc{}) return std::nullopt;
  }
  return entry;
}

std::string format_log_line(const fs::NamespaceTree& tree,
                            const TraceRecord& record,
                            std::uint64_t sequence) {
  // A synthetic-but-valid CLF line; the timestamp advances one second per
  // record from an arbitrary epoch (its value is irrelevant to replay).
  std::string line = "10.0.0.1 - - [";
  line += "23/Aug/2013:00:";
  const std::uint64_t minutes = (sequence / 60) % 60;
  const std::uint64_t seconds = sequence % 60;
  line += (minutes < 10 ? "0" : "") + std::to_string(minutes) + ":";
  line += (seconds < 10 ? "0" : "") + std::to_string(seconds);
  line += " -0400] \"GET ";
  line += tree.path_of(record.dir);
  line += "/file" + std::to_string(record.file);
  line += " HTTP/1.1\" 200 512";
  return line;
}

void write_log(std::ostream& os, const fs::NamespaceTree& tree,
               const WebTrace& trace) {
  std::uint64_t sequence = 0;
  for (const TraceRecord& record : trace.records()) {
    os << format_log_line(tree, record, sequence++) << '\n';
  }
}

ImportedLog import_log(std::istream& is) {
  ImportedLog out;
  out.tree = std::make_unique<fs::NamespaceTree>();
  fs::NamespaceTree& tree = *out.tree;

  // Maps a directory path to its DirId, and each (dir, leaf name) to a
  // file index within the directory.
  std::map<std::string, DirId, std::less<>> dirs;
  dirs.emplace("/", tree.root());
  std::map<DirId, std::map<std::string, FileIndex, std::less<>>> files;

  const auto dir_for = [&](std::string_view path) -> DirId {
    const auto it = dirs.find(path);
    if (it != dirs.end()) return it->second;
    // Create the chain component by component.
    DirId current = tree.root();
    std::string so_far;
    for (const std::string_view part : fs::split_path(path)) {
      so_far += '/';
      so_far += part;
      const auto known = dirs.find(so_far);
      if (known != dirs.end()) {
        current = known->second;
        continue;
      }
      current = tree.add_dir(current, std::string(part));
      dirs.emplace(so_far, current);
    }
    return current;
  };

  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::optional<LogEntry> entry = parse_log_line(line);
    if (!entry) {
      ++out.malformed_lines;
      continue;
    }
    const std::size_t last_slash = entry->path.find_last_of('/');
    const std::string_view dir_path =
        last_slash == 0 ? std::string_view("/")
                        : std::string_view(entry->path).substr(0, last_slash);
    const std::string leaf = entry->path.substr(last_slash + 1);
    if (leaf.empty()) {
      ++out.malformed_lines;
      continue;
    }
    const DirId dir = dir_for(dir_path);
    auto& dir_files = files[dir];
    const auto it = dir_files.find(leaf);
    FileIndex idx;
    if (it != dir_files.end()) {
      idx = it->second;
    } else {
      idx = tree.create_file(dir);
      dir_files.emplace(leaf, idx);
      ++out.distinct_files;
    }
    out.records.push_back(TraceRecord{.dir = dir, .file = idx});
  }
  return out;
}

ParsedLog parse_log(std::istream& is, const fs::NamespaceTree& tree) {
  ParsedLog out;
  const fs::PathResolver resolver(tree);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::optional<LogEntry> entry = parse_log_line(line);
    if (!entry) {
      ++out.malformed_lines;
      continue;
    }
    // Split into directory path + "fileN" leaf.
    const std::size_t last_slash = entry->path.find_last_of('/');
    const std::string_view dir_path =
        last_slash == 0 ? std::string_view("/")
                        : std::string_view(entry->path).substr(0, last_slash);
    const std::string_view leaf =
        std::string_view(entry->path).substr(last_slash + 1);
    const std::optional<FileIndex> file = parse_file_component(leaf);
    const auto resolved = resolver.resolve(dir_path);
    if (!file || !resolved ||
        *file >= tree.dir(resolved->dir).file_count()) {
      ++out.unresolved_paths;
      continue;
    }
    out.records.push_back(TraceRecord{.dir = resolved->dir, .file = *file});
  }
  return out;
}

}  // namespace lunule::workloads
