// Multi-tenant container-platform mix ("MultiTenant", CFS direction).
//
// A container platform's metadata traffic is thousands of small tenants —
// per-image layer directories, per-pod config trees — whose popularity is
// itself Zipf-distributed: a handful of base images are pulled by everyone
// while the long tail is touched rarely.  Each operation picks a tenant by
// popularity, then either reads one of its (few) files or creates a new
// one (layer push).  Popular tenants turn into organic flash crowds, which
// is what the proxy tier's adaptive promotion is meant to catch without a
// hand-picked hot directory.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "workloads/workload.h"

namespace lunule::workloads {

class TenantMixProgram final : public WorkloadProgram {
 public:
  /// tenant_dirs: the shared tenant directories (each pre-created with
  /// `files_per_tenant` files); sampler universe = tenant_dirs->size();
  /// create_fraction: share of file touches that are creates (layer push).
  TenantMixProgram(std::shared_ptr<const std::vector<DirId>> tenant_dirs,
                   std::uint32_t files_per_tenant, std::uint64_t requests,
                   double create_fraction,
                   std::shared_ptr<const ZipfSampler> sampler, Rng rng,
                   double meta_ratio = 0.781);

  bool next(Op& out) override;
  [[nodiscard]] std::uint64_t planned_meta_ops() const override;

 private:
  std::shared_ptr<const std::vector<DirId>> tenant_dirs_;
  std::uint32_t files_per_tenant_;
  std::uint64_t remaining_files_;
  double create_fraction_;
  std::shared_ptr<const ZipfSampler> sampler_;
  Rng rng_;
  MetaOpPacer pacer_;
  std::uint32_t meta_left_ = 0;
  Op current_{};
};

}  // namespace lunule::workloads
