#include "workloads/scan.h"

#include "common/assert.h"

namespace lunule::workloads {

ScanProgram::ScanProgram(std::vector<DirId> dirs,
                         std::vector<std::uint32_t> files_per_dir,
                         double meta_ratio)
    : dirs_(std::move(dirs)),
      files_per_dir_(std::move(files_per_dir)),
      // Ratios >= 0.999 mean "pure metadata": one op per file, no data
      // phase (avoids a degenerate ~1e9 ops/file pacing rate).
      pacer_(meta_ratio < 0.999 ? meta_ops_for_ratio(meta_ratio) : 1.0,
             /*with_data=*/meta_ratio < 0.999) {
  LUNULE_CHECK(dirs_.size() == files_per_dir_.size());
  // Planned op count uses the long-run average (exact up to rounding).
  double planned = 0.0;
  for (const std::uint32_t n : files_per_dir_) {
    planned += static_cast<double>(n) * pacer_.meta_ops_per_file();
  }
  planned_ = static_cast<std::uint64_t>(planned);
}

bool ScanProgram::next(Op& out) {
  while (meta_left_ == 0) {
    // Advance to the next file (skipping exhausted directories).
    if (dir_pos_ >= dirs_.size()) return false;
    if (file_pos_ >= files_per_dir_[dir_pos_]) {
      ++dir_pos_;
      file_pos_ = 0;
      continue;
    }
    meta_left_ = pacer_.begin_file();
    break;
  }
  if (dir_pos_ >= dirs_.size()) return false;
  out.dir = dirs_[dir_pos_];
  out.file = file_pos_;
  out.kind = OpKind::kLookup;
  --meta_left_;
  out.has_data = pacer_.with_data() && meta_left_ == 0;
  if (meta_left_ == 0) ++file_pos_;
  return true;
}

}  // namespace lunule::workloads
