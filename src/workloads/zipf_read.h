// Filebench Zipfian read program ("Zipf" of Table 1).
//
// Each client exclusively accesses its own non-shared directory and reads
// files at random following a Zipf distribution — the paper's configuration
// implements the 80/20 rule (80% of requests touch 20% of the files),
// yielding strong temporal locality with a stable per-directory load.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/zipf.h"
#include "workloads/workload.h"

namespace lunule::workloads {

class ZipfReadProgram final : public WorkloadProgram {
 public:
  /// dir: the client's private directory with `files` pre-created files;
  /// requests: file reads the client performs before its job completes.
  ZipfReadProgram(DirId dir, std::uint32_t files, std::uint64_t requests,
                  std::shared_ptr<const ZipfSampler> sampler, Rng rng,
                  double meta_ratio = 0.5);

  bool next(Op& out) override;
  [[nodiscard]] std::uint64_t planned_meta_ops() const override;

 private:
  DirId dir_;
  std::uint32_t files_;
  std::uint64_t remaining_files_;
  std::shared_ptr<const ZipfSampler> sampler_;
  Rng rng_;
  MetaOpPacer pacer_;
  std::uint32_t meta_left_ = 0;
  FileIndex current_file_ = 0;
};

}  // namespace lunule::workloads
