#include "workloads/flash_crowd.h"

#include "common/assert.h"

namespace lunule::workloads {

FlashCrowdProgram::FlashCrowdProgram(
    DirId hot_dir, std::uint32_t hot_files, DirId home_dir,
    std::uint32_t home_files, std::uint64_t requests, double hot_fraction,
    std::shared_ptr<const ZipfSampler> sampler, Rng rng, double meta_ratio)
    : hot_dir_(hot_dir),
      hot_files_(hot_files),
      home_dir_(home_dir),
      home_files_(home_files),
      remaining_files_(requests),
      hot_fraction_(hot_fraction),
      sampler_(std::move(sampler)),
      rng_(rng),
      pacer_(meta_ops_for_ratio(meta_ratio), /*with_data=*/true) {
  LUNULE_CHECK(sampler_ != nullptr);
  LUNULE_CHECK(sampler_->universe() == hot_files_);
  LUNULE_CHECK(home_files_ > 0);
  LUNULE_CHECK(hot_fraction_ >= 0.0 && hot_fraction_ <= 1.0);
}

std::uint64_t FlashCrowdProgram::planned_meta_ops() const {
  return static_cast<std::uint64_t>(static_cast<double>(remaining_files_) *
                                    pacer_.meta_ops_per_file());
}

bool FlashCrowdProgram::next(Op& out) {
  if (meta_left_ == 0) {
    if (remaining_files_ == 0) return false;
    --remaining_files_;
    if (rng_.next_bool(hot_fraction_)) {
      // Celebrity touch: high-skew Zipf over the shared directory, ranks
      // scattered across indices so the hot set is not a contiguous
      // prefix (same convention as ZipfReadProgram).
      const std::uint64_t rank = sampler_->sample(rng_);
      current_dir_ = hot_dir_;
      current_file_ = static_cast<FileIndex>(mix64(rank) % hot_files_);
    } else {
      current_dir_ = home_dir_;
      current_file_ =
          static_cast<FileIndex>(rng_.next_below(home_files_));
    }
    meta_left_ = pacer_.begin_file();
  }
  out.dir = current_dir_;
  out.file = current_file_;
  out.kind = OpKind::kLookup;
  --meta_left_;
  out.has_data = meta_left_ == 0;
  return true;
}

}  // namespace lunule::workloads
