#include "workloads/client.h"

#include <algorithm>

#include "common/assert.h"

namespace lunule::workloads {

Client::Client(std::uint32_t id, ClientParams params,
               std::unique_ptr<WorkloadProgram> program)
    : id_(id), params_(params), program_(std::move(program)) {
  LUNULE_CHECK(program_ != nullptr);
  LUNULE_CHECK(params_.max_ops_per_tick > 0.0);
}

MdsId Client::op_rank(const mds::MdsCluster& cluster, const Op& op) const {
  const fs::NamespaceTree& tree = cluster.tree();
  // Any op on a proxy-promoted directory touches the tier's lease table
  // (absorb / grant / mutation recall), which is shared across ranks; run
  // it in the serial deferred pass.  The tracked set only changes at epoch
  // close, so this read is stable for the whole tick.
  if (cluster.cache_tier_tracks(op.dir)) return kNoMds;
  if (op.kind == OpKind::kCreate) {
    // Deferred create accounting settles ancestor counts against the
    // directory's resolved authority, which only matches per-file
    // placement while no fragment of the directory is pinned.
    if (tree.dir(op.dir).frag_pin_count() > 0) return kNoMds;
    return tree.auth_of(op.dir);
  }
  // A replicated fragment is served by the least-loaded holder — a pick
  // that reads every rank's open-epoch tally, so it cannot run inside a
  // rank-restricted phase.
  if (tree.frag(op.dir, tree.frag_of(op.dir, op.file)).replicated()) {
    return kNoMds;
  }
  return tree.auth_of_file(op.dir, op.file);
}

MdsId Client::shard_rank(const mds::MdsCluster& cluster, Tick now) const {
  if (done_ || now < params_.start_tick) return kNoMds;
  if (pending_data_ || !have_op_) return kNoMds;
  return op_rank(cluster, op_);
}

MdsId Client::resolve_with_forwards(mds::MdsCluster& cluster, const Op& op,
                                    Tick now, mds::TickLane* lane) {
  const fs::NamespaceTree& tree = cluster.tree();
  if (auth_cache_.size() < tree.dir_count()) {
    auth_cache_.resize(tree.dir_count(), kNoMds);
    lease_until_.resize(tree.dir_count(), -1);
  }
  MdsId target;
  if (op.kind == OpKind::kCreate) {
    const FileIndex idx = tree.dir(op.dir).file_count();
    const MdsId pin = tree.frag(op.dir, tree.frag_of(op.dir, idx)).auth_pin;
    target = pin != kNoMds ? pin : tree.auth_of(op.dir);
  } else {
    target = tree.auth_of_file(op.dir, op.file);
  }
  // The cache is validated at directory level: after one traversal the
  // client knows the directory's dirfrag->MDS map (like a CephFS client
  // holding the dirfrag tree), so per-frag routing does not re-traverse.
  const MdsId dir_auth = tree.auth_of(op.dir);
  if (auth_cache_[op.dir] == dir_auth && now < lease_until_[op.dir]) {
    return target;
  }
  const std::uint64_t before = forwards_;

  // Cache miss or stale entry: the request traverses the path from the
  // root, bouncing once per authority boundary crossed.
  MdsId prev = tree.auth_of(tree.root());
  // Collect the root path (depths are small: <= 4 in all our namespaces).
  DirId chain[16];
  int depth = 0;
  for (DirId d = op.dir; d != tree.root(); d = tree.parent(d)) {
    LUNULE_CHECK(depth < 16);
    chain[depth++] = d;
  }
  for (int i = depth - 1; i >= 0; --i) {
    const MdsId a = tree.auth_of(chain[i]);
    if (a != prev) {
      ++forwards_;
      cluster.charge_forward(prev, lane);  // the redirecting MDS bounces
      prev = a;
    }
  }
  if (target != prev) {
    // One extra hop when the file's dirfrag is pinned away from its dir.
    ++forwards_;
    cluster.charge_forward(prev, lane);
  }
  auth_cache_[op.dir] = dir_auth;
  lease_until_[op.dir] = now + params_.lease_ticks;
  // Each redirect costs the client a round trip: it consumes issue budget
  // just like an operation would (closed loop — forwards slow the client
  // down, which is how Dir-Hash's locality destruction hurts end-to-end
  // throughput in the paper).
  budget_ -= static_cast<double>(forwards_ - before);
  return target;
}

std::uint32_t Client::run_tick(mds::MdsCluster& cluster, mds::DataPath* data,
                               Tick now, const ShardBinding* shard,
                               bool* paused) {
  if (done_ || now < params_.start_tick) return 0;
  // Per-tick bookkeeping runs once even when the sharded engine calls this
  // twice (shard phase, then the deferred continuation after a pause).
  if (refill_tick_ != now) {
    refill_tick_ = now;
    started_ = true;
    ++active_;
    tick_served_ = 0;
    budget_ = std::min(budget_ + params_.max_ops_per_tick,
                       2.0 * params_.max_ops_per_tick);
  }
  std::uint32_t served = 0;
  bool pause = false;
  while (budget_ >= 1.0) {
    if (pending_data_) {
      if (shard != nullptr) {
        pause = true;  // the data path is shared across ranks
        break;
      }
      LUNULE_CHECK(data != nullptr);
      if (!data->try_serve()) break;  // data path saturated: stall
      pending_data_ = false;
      ++data_ops_;
      budget_ -= 1.0;
      continue;
    }
    if (!have_op_) {
      if (shard != nullptr) {
        pause = true;  // fetching may end the job: finalize serially
        break;
      }
      if (!program_->next(op_)) {
        done_ = true;
        completion_tick_ = now;
        break;
      }
      have_op_ = true;
    }
    if (shard != nullptr && op_rank(cluster, op_) != shard->rank) {
      pause = true;  // the stream moved off this rank mid-tick
      break;
    }
    if (op_first_attempt_ < 0) op_first_attempt_ = now;
    resolve_with_forwards(cluster, op_, now,
                          shard != nullptr ? shard->lane : nullptr);
    mds::TickLane* lane = shard != nullptr ? shard->lane : nullptr;
    const mds::ServeResult res =
        op_.kind == OpKind::kCreate
            ? cluster.try_create(op_.dir, lane)
            : cluster.try_serve(op_.dir, op_.file, lane);
    if (res != mds::ServeResult::kServed) break;  // head-of-line blocking
    budget_ -= 1.0;
    ++meta_ops_;
    ++served;
    latency_.add(static_cast<double>(now - op_first_attempt_ + 1));
    op_first_attempt_ = -1;
    const bool had_data = op_.has_data && data != nullptr;
    if (had_data) pending_data_ = true;
    // Fetch the next operation eagerly so job completion is recorded at
    // the tick the last operation was served, not one tick later.
    if (!program_->next(op_)) {
      have_op_ = false;
      if (!pending_data_) {
        done_ = true;
        completion_tick_ = now;
        break;
      }
    }
  }
  tick_served_ += served;
  if (pause) {
    // The client still has budget and work but must leave the rank stream;
    // stall accounting waits for the deferred continuation.
    if (paused != nullptr) *paused = true;
    return served;
  }
  if (tick_served_ == 0 && !done_) ++stalled_;
  return served;
}

}  // namespace lunule::workloads
