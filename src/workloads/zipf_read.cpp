#include "workloads/zipf_read.h"

#include "common/assert.h"

namespace lunule::workloads {

ZipfReadProgram::ZipfReadProgram(DirId dir, std::uint32_t files,
                                 std::uint64_t requests,
                                 std::shared_ptr<const ZipfSampler> sampler,
                                 Rng rng, double meta_ratio)
    : dir_(dir),
      files_(files),
      remaining_files_(requests),
      sampler_(std::move(sampler)),
      rng_(rng),
      pacer_(meta_ops_for_ratio(meta_ratio), /*with_data=*/true) {
  LUNULE_CHECK(sampler_ != nullptr);
  LUNULE_CHECK(sampler_->universe() == files_);
}

std::uint64_t ZipfReadProgram::planned_meta_ops() const {
  return static_cast<std::uint64_t>(static_cast<double>(remaining_files_) *
                                    pacer_.meta_ops_per_file());
}

bool ZipfReadProgram::next(Op& out) {
  if (meta_left_ == 0) {
    if (remaining_files_ == 0) return false;
    --remaining_files_;
    // Scatter Zipf ranks across file indices so the hot set is not a
    // contiguous prefix (matches Filebench's random file assignment).
    const std::uint64_t rank = sampler_->sample(rng_);
    current_file_ = static_cast<FileIndex>(mix64(rank) % files_);
    meta_left_ = pacer_.begin_file();
  }
  out.dir = dir_;
  out.file = current_file_;
  out.kind = OpKind::kLookup;
  --meta_left_;
  out.has_data = meta_left_ == 0;
  return true;
}

}  // namespace lunule::workloads
