#include "workloads/web_trace.h"

#include "common/assert.h"

namespace lunule::workloads {

WebTrace::WebTrace(std::vector<DirId> leaf_dirs, std::uint32_t files_per_dir,
                   std::uint64_t length, double zipf_exponent, Rng rng) {
  LUNULE_CHECK(!leaf_dirs.empty());
  LUNULE_CHECK(files_per_dir > 0);
  universe_ = static_cast<std::uint64_t>(leaf_dirs.size()) * files_per_dir;

  // Two-level popularity, like real web-server logs: directories (site
  // sections) follow their own Zipf law, and files within a directory
  // follow another.  This gives the trace both the per-file temporal
  // locality and the *section-level* spatial skew that a static hash
  // partitioning cannot adapt to (Section 4.6 of the paper).
  const ZipfSampler dir_zipf(leaf_dirs.size(), 1.1);
  const ZipfSampler file_zipf(files_per_dir, zipf_exponent);
  // Scatter the directory popularity ranks over the tree so hot sections
  // are not simply the first ones created.
  std::vector<DirId> by_rank = leaf_dirs;
  rng.shuffle(std::span<DirId>(by_rank));
  records_.reserve(length);
  for (std::uint64_t i = 0; i < length; ++i) {
    const std::uint64_t dir_rank = dir_zipf.sample(rng);
    const std::uint64_t file_rank = file_zipf.sample(rng);
    records_.push_back(TraceRecord{
        .dir = by_rank[dir_rank],
        .file = static_cast<FileIndex>(mix64(file_rank) % files_per_dir)});
  }
}

WebTrace WebTrace::from_records(std::vector<TraceRecord> records,
                                std::uint64_t universe_files) {
  WebTrace trace;
  trace.records_ = std::move(records);
  trace.universe_ = universe_files;
  return trace;
}

WebReplayProgram::WebReplayProgram(std::shared_ptr<const WebTrace> trace,
                                   std::uint64_t offset,
                                   std::uint64_t requests, double meta_ratio)
    : trace_(std::move(trace)),
      pos_(offset),
      remaining_files_(requests),
      pacer_(meta_ops_for_ratio(meta_ratio), /*with_data=*/true) {
  LUNULE_CHECK(trace_ != nullptr && !trace_->records().empty());
}

std::uint64_t WebReplayProgram::planned_meta_ops() const {
  return static_cast<std::uint64_t>(static_cast<double>(remaining_files_) *
                                    pacer_.meta_ops_per_file());
}

bool WebReplayProgram::next(Op& out) {
  if (meta_left_ == 0) {
    if (remaining_files_ == 0) return false;
    --remaining_files_;
    const auto& recs = trace_->records();
    current_ = recs[pos_ % recs.size()];
    ++pos_;
    meta_left_ = pacer_.begin_file();
  }
  out.dir = current_.dir;
  out.file = current_.file;
  out.kind = OpKind::kLookup;
  --meta_left_;
  out.has_data = meta_left_ == 0;
  return true;
}

}  // namespace lunule::workloads
