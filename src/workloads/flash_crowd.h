// Celebrity-file / thundering-herd read program ("FlashCrowd").
//
// Every client in the fleet hammers one *shared* celebrity directory —
// think the manifest of a just-released container image, or the profile
// directory of an account that went viral — with high-skew Zipfian reads,
// while a small fraction of its requests touches a private background
// directory (the client's own working set).  Unlike the Table 1 workloads,
// whose per-client directories partition cleanly across ranks, the hot
// directory here is indivisible: rebalancing cannot split it, which is
// exactly the regime where Lunule's own evaluation is weakest and a
// hotspot-absorbing proxy tier (MIDAS direction) pays off.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/zipf.h"
#include "workloads/workload.h"

namespace lunule::workloads {

class FlashCrowdProgram final : public WorkloadProgram {
 public:
  /// hot_dir: the shared celebrity directory (`hot_files` pre-created
  /// files, one Zipf sampler shared by the whole fleet); home_dir: this
  /// client's private background directory; requests: total file touches;
  /// hot_fraction: share of touches aimed at the celebrity directory.
  FlashCrowdProgram(DirId hot_dir, std::uint32_t hot_files, DirId home_dir,
                    std::uint32_t home_files, std::uint64_t requests,
                    double hot_fraction,
                    std::shared_ptr<const ZipfSampler> sampler, Rng rng,
                    double meta_ratio = 0.9);

  bool next(Op& out) override;
  [[nodiscard]] std::uint64_t planned_meta_ops() const override;

 private:
  DirId hot_dir_;
  std::uint32_t hot_files_;
  DirId home_dir_;
  std::uint32_t home_files_;
  std::uint64_t remaining_files_;
  double hot_fraction_;
  std::shared_ptr<const ZipfSampler> sampler_;
  Rng rng_;
  MetaOpPacer pacer_;
  std::uint32_t meta_left_ = 0;
  DirId current_dir_ = kNoDir;
  FileIndex current_file_ = 0;
};

}  // namespace lunule::workloads
