// Whole-dataset scan program — the access pattern of the CNN image
// preprocessing and NLP training workloads (Table 1).
//
// The client walks a list of directories in a fixed order and touches every
// file of each directory exactly once.  No file is ever re-visited, which
// is precisely the pattern that invalidates heat-based candidate selection
// (Section 2.2, inefficiency #3): by the time a subtree is "hot" its load
// is already gone.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace lunule::workloads {

class ScanProgram final : public WorkloadProgram {
 public:
  /// dirs: directories to scan, in order; files_per_dir[i] files each.
  /// meta_ratio: Table 1 metadata-operation ratio of the workload.
  ScanProgram(std::vector<DirId> dirs, std::vector<std::uint32_t> files_per_dir,
              double meta_ratio);

  bool next(Op& out) override;
  [[nodiscard]] std::uint64_t planned_meta_ops() const override {
    return planned_;
  }

 private:
  std::vector<DirId> dirs_;
  std::vector<std::uint32_t> files_per_dir_;
  MetaOpPacer pacer_;
  std::uint64_t planned_ = 0;

  std::size_t dir_pos_ = 0;
  FileIndex file_pos_ = 0;
  std::uint32_t meta_left_ = 0;  // remaining meta ops for the current file
};

}  // namespace lunule::workloads
