// Web-trace generation and replay (the "Web" workload of Table 1).
//
// The paper replays an Apache access log gathered at Florida State
// University (302K files, 8.06M HTTP requests), with every client fetching
// files in trace order.  The trace itself is not redistributable, so we
// generate a synthetic equivalent preserving the property the balancer
// cares about: strong *temporal* locality — file popularity follows a Zipf
// law, and popular files recur throughout the trace.  Clients replay the
// shared trace in order from per-client offsets, like the paper's clients.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "workloads/workload.h"

namespace lunule::workloads {

/// One trace record: a file reference.
struct TraceRecord {
  DirId dir = kNoDir;
  FileIndex file = 0;
};

/// A shared synthetic web trace: Zipf-popular file references.
class WebTrace {
 public:
  /// leaf_dirs: document-tree leaf directories; files_per_dir: uniform
  /// population per leaf; length: number of requests in the trace.
  /// Popularity ranks are scattered over the tree (a popular page may live
  /// anywhere), matching real web namespaces.
  WebTrace(std::vector<DirId> leaf_dirs, std::uint32_t files_per_dir,
           std::uint64_t length, double zipf_exponent, Rng rng);

  /// Wraps an externally obtained record sequence (e.g. a parsed Apache
  /// log) in a replayable trace.
  [[nodiscard]] static WebTrace from_records(
      std::vector<TraceRecord> records, std::uint64_t universe_files);

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t universe_files() const { return universe_; }

 private:
  WebTrace() = default;
  std::vector<TraceRecord> records_;
  std::uint64_t universe_ = 0;
};

/// Replays the shared trace in order, starting at `offset`, for
/// `requests` requests (wrapping around).
class WebReplayProgram final : public WorkloadProgram {
 public:
  WebReplayProgram(std::shared_ptr<const WebTrace> trace,
                   std::uint64_t offset, std::uint64_t requests,
                   double meta_ratio);

  bool next(Op& out) override;
  [[nodiscard]] std::uint64_t planned_meta_ops() const override;

 private:
  std::shared_ptr<const WebTrace> trace_;
  std::uint64_t pos_;
  std::uint64_t remaining_files_;
  MetaOpPacer pacer_;
  std::uint32_t meta_left_ = 0;
  TraceRecord current_{};
};

}  // namespace lunule::workloads
