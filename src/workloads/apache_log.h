// Apache access-log parsing and generation.
//
// The paper's Web workload "replays a web access trace ... in the Apache
// access log format" (Table 1).  This module closes that loop for the
// simulator: it can *emit* a synthetic trace as Common-Log-Format text and
// *parse* CLF text back into replayable trace records, mapping each
// request's URL path onto the simulated document tree.  The Web scenario's
// internal generator produces the same distribution directly; this module
// exists so users can feed their own real logs to the simulator
// (`examples/web_server_replay.cpp --log=<file>` style tooling) and so the
// generator round-trips through the on-disk format under test.
//
// Supported line shape (Common Log Format; the combined format's trailing
// referer/agent fields are tolerated and ignored):
//
//   127.0.0.1 - - [23/Aug/2013:10:01:02 -0400] "GET /a/b/file17 HTTP/1.1" 200 512
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fs/path_resolver.h"
#include "workloads/web_trace.h"

namespace lunule::workloads {

/// One parsed access-log entry.
struct LogEntry {
  std::string path;     // URL path, e.g. "/web/section3/dir7/file12"
  std::string method;   // "GET", ...
  int status = 0;       // HTTP status
  std::uint64_t bytes = 0;
};

/// Parses one Common-Log-Format line; nullopt if malformed.
[[nodiscard]] std::optional<LogEntry> parse_log_line(std::string_view line);

/// Renders a trace record as one CLF line addressing the simulated tree
/// (file index i maps to ".../fileI").
[[nodiscard]] std::string format_log_line(const fs::NamespaceTree& tree,
                                          const TraceRecord& record,
                                          std::uint64_t sequence);

/// Writes a whole trace as CLF text.
void write_log(std::ostream& os, const fs::NamespaceTree& tree,
               const WebTrace& trace);

/// Result of mapping a log back onto the namespace.
struct ParsedLog {
  std::vector<TraceRecord> records;
  std::size_t malformed_lines = 0;   // unparsable text
  std::size_t unresolved_paths = 0;  // parsed but not present in the tree
};

/// Parses CLF text and resolves every request path against the tree.  The
/// last path component must be "file<N>" with N within the directory's
/// population; other requests count as unresolved.
[[nodiscard]] ParsedLog parse_log(std::istream& is,
                                  const fs::NamespaceTree& tree);

/// A namespace and trace imported from a log of *arbitrary* URL paths
/// (no "fileN" convention required): every distinct directory path becomes
/// a directory, every distinct leaf name becomes a file, and the requests
/// become replayable trace records in log order.
struct ImportedLog {
  std::unique_ptr<fs::NamespaceTree> tree;
  std::vector<TraceRecord> records;
  std::size_t malformed_lines = 0;
  std::uint64_t distinct_files = 0;
};

/// Builds a fresh namespace from the log's path population and maps each
/// request onto it.  This is how a user replays a real web-server log
/// against the simulator (see examples/replay_apache_log.cpp).
[[nodiscard]] ImportedLog import_log(std::istream& is);

}  // namespace lunule::workloads
