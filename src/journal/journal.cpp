#include "journal/journal.h"

#include "common/assert.h"

namespace lunule::journal {

std::string_view entry_type_name(EntryType t) {
  switch (t) {
    case EntryType::kUpdate:       return "EUpdate";
    case EntryType::kSubtreeMap:   return "ESubtreeMap";
    case EntryType::kExportCommit: return "EExportCommit";
    case EntryType::kImportStart:  return "EImportStart";
  }
  return "?";
}

std::uint64_t entry_bytes(const JournalEntry& e) {
  switch (e.type) {
    case EntryType::kUpdate:
      return 512;  // dentry + inode + lock state of one mutation
    case EntryType::kExportCommit:
    case EntryType::kImportStart:
      return 256;  // subtree bound + peer handshake record
    case EntryType::kSubtreeMap:
      // Envelope plus one bound record per owned unit and one double per
      // checkpointed load sample.
      return 64 + 48 * static_cast<std::uint64_t>(e.snapshot.owned.size()) +
             8 * static_cast<std::uint64_t>(e.snapshot.load_history.size());
  }
  return 0;
}

MdsJournal::MdsJournal(MdsId rank, JournalParams params)
    : rank_(rank), params_(params) {
  LUNULE_CHECK(params_.segment_entries >= 1);
  LUNULE_CHECK(params_.flush_interval_ticks >= 1);
  LUNULE_CHECK(params_.max_unflushed_entries >= 1);
  LUNULE_CHECK(params_.append_cost_ops >= 0.0);
  LUNULE_CHECK(params_.flush_cost_ops >= 0.0);
  LUNULE_CHECK(params_.replay_entries_per_second > 0.0);
  LUNULE_CHECK(params_.replay_base_seconds >= 0.0);
  LUNULE_CHECK(params_.replay_capacity_penalty >= 0.0 &&
               params_.replay_capacity_penalty < 1.0);
  LUNULE_CHECK(params_.history_decay_per_epoch > 0.0 &&
               params_.history_decay_per_epoch <= 1.0);
  LUNULE_CHECK(params_.async_high_water_entries >= 1);
}

std::uint64_t MdsJournal::append(JournalEntry e) {
  e.seq = ++seq_;
  // Dependency stamping: a checkpoint depends on the whole prefix before
  // it; a dir-scoped entry depends on the newest earlier entry touching
  // the same directory (create-before-child-create, export-commit-before-
  // dependent-update).  Stamped in every mode so sync and async journals
  // carry identical entries — only the cost routing differs.
  if (e.type == EntryType::kSubtreeMap) {
    e.dep_seq = e.seq - 1;
  } else if (e.dir != kNoDir) {
    const auto it = last_dir_seq_.find(e.dir);
    e.dep_seq = it != last_dir_seq_.end() ? it->second : 0;
    last_dir_seq_[e.dir] = e.seq;
  }
  if (params_.async_mode) ++async_acked_;
  if (segments_.empty() ||
      segments_.back().entries.size() >= params_.segment_entries) {
    segments_.emplace_back();
    segments_.back().entries.reserve(params_.segment_entries);
  }
  if (e.type == EntryType::kSubtreeMap) map_seq_ = e.seq;
  bytes_ += entry_bytes(e);
  segments_.back().entries.push_back(std::move(e));
  ++retained_;
  ++appends_;
  return seq_;
}

bool MdsJournal::flush(Tick now) {
  if (stalled(now)) return false;
  last_flush_tick_ = now;
  if (durable_seq_ == seq_) return false;
  durable_seq_ = seq_;
  durable_map_seq_ = map_seq_;
  ++flushes_;
  return true;
}

bool MdsJournal::maybe_flush(Tick now) {
  if (last_flush_tick_ >= 0 &&
      now - last_flush_tick_ < params_.flush_interval_ticks) {
    return false;
  }
  return flush(now);
}

std::size_t MdsJournal::trim() {
  if (durable_map_seq_ == 0) return 0;
  std::size_t dropped = 0;
  // Never trim the tail segment: the segment holding the newest durable
  // ESubtreeMap (and anything after it) must survive for replay.
  while (segments_.size() > 1 &&
         segments_.front().entries.back().seq < durable_map_seq_) {
    retained_ -= segments_.front().entries.size();
    segments_.pop_front();
    ++dropped;
  }
  trimmed_ += dropped;
  return dropped;
}

void MdsJournal::reset() {
  segments_.clear();
  retained_ = 0;
  durable_seq_ = seq_;
  map_seq_ = 0;
  durable_map_seq_ = 0;
  stall_until_ = 0;
  last_flush_tick_ = -1;
  last_dir_seq_.clear();
}

}  // namespace lunule::journal
