#include "journal/replay.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lunule::journal {

namespace {

/// Deterministic namespace order for reconstructed authority sets.
bool ref_less(const fs::SubtreeRef& a, const fs::SubtreeRef& b) {
  if (a.dir != b.dir) return a.dir < b.dir;
  return a.frag < b.frag;
}

}  // namespace

ReplayResult replay_journal(const MdsJournal& j, EpochId now_epoch,
                            const JournalParams& p) {
  ReplayResult r;
  r.lost_entries = j.unflushed();
  r.acked_lost_entries = p.async_mode ? r.lost_entries : 0;

  // Prefix-consistency audit: every durable entry's dependency must itself
  // be durable.  The flush model commits whole prefixes, so a violation
  // here means the durable set became non-contiguous — state no replay
  // could order correctly.
  for (const JournalSegment& seg : j.segments()) {
    for (const JournalEntry& e : seg.entries) {
      if (e.seq > j.durable_seq() || e.dep_seq == 0) continue;
      if (e.dep_seq >= e.seq || e.dep_seq > j.durable_seq()) {
        ++r.dependency_violations;
      }
    }
  }

  // Locate the newest durable ESubtreeMap across the retained segments.
  const JournalEntry* checkpoint = nullptr;
  const std::uint64_t map_seq = j.durable_subtree_map_seq();
  for (const JournalSegment& seg : j.segments()) {
    for (const JournalEntry& e : seg.entries) {
      if (e.type == EntryType::kSubtreeMap && e.seq == map_seq) {
        checkpoint = &e;
      }
    }
  }

  std::vector<fs::SubtreeRef> owned;
  if (checkpoint != nullptr) {
    owned = checkpoint->snapshot.owned;
    r.load_history = checkpoint->snapshot.load_history;
    r.checkpoint_epoch = checkpoint->epoch;
    r.entries_replayed = 1;
  }

  // Patch the snapshot with every later durable authority delta.  EUpdates
  // are replayed (they cost time) but do not move subtree bounds.
  const std::uint64_t from_seq = checkpoint != nullptr ? checkpoint->seq : 0;
  for (const JournalSegment& seg : j.segments()) {
    for (const JournalEntry& e : seg.entries) {
      if (e.seq <= from_seq || e.seq > j.durable_seq()) continue;
      ++r.entries_replayed;
      const fs::SubtreeRef ref{e.dir, e.frag};
      if (e.type == EntryType::kImportStart) {
        if (std::find(owned.begin(), owned.end(), ref) == owned.end()) {
          owned.push_back(ref);
        }
      } else if (e.type == EntryType::kExportCommit) {
        owned.erase(std::remove(owned.begin(), owned.end(), ref),
                    owned.end());
      }
    }
  }
  std::sort(owned.begin(), owned.end(), ref_less);
  r.owned = std::move(owned);

  // Replay-time model: nothing durable → instant (there is no journal to
  // open); otherwise a fixed base plus rate-limited entry scan.
  if (r.entries_replayed > 0) {
    r.replay_seconds =
        p.replay_base_seconds +
        static_cast<double>(r.entries_replayed) / p.replay_entries_per_second;
  }

  // Decay the checkpointed history across the replay gap: the forecast
  // signal aged one decay step per epoch the journal sat unplayed.
  if (!r.load_history.empty() && r.checkpoint_epoch >= 0) {
    const EpochId gap = std::max<EpochId>(0, now_epoch - r.checkpoint_epoch);
    const double scale = std::pow(p.history_decay_per_epoch,
                                  static_cast<double>(gap));
    for (double& v : r.load_history) v *= scale;
  }
  return r;
}

Tick replay_window_ticks(double replay_seconds) {
  if (replay_seconds <= 0.0) return 0;
  // Tolerate representation noise just above an integer boundary: a value
  // like 3.0000000000000004 is an exact 3-tick window, not a 4-tick one.
  const double eps = 4.0 * std::numeric_limits<double>::epsilon() *
                     std::max(1.0, replay_seconds);
  const auto ticks = static_cast<Tick>(std::ceil(replay_seconds - eps));
  return std::max<Tick>(ticks, 1);
}

}  // namespace lunule::journal
