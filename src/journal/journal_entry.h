// Typed entries of the per-rank metadata journal.
//
// The entry vocabulary mirrors CephFS's LogEvent hierarchy, reduced to the
// four kinds that matter for the balancing/recovery model:
//   * EUpdate       — a metadata mutation (create/unlink/rename) against a
//                     dirfrag the rank is authoritative for;
//   * ESubtreeMap   — a checkpoint of everything the rank is authoritative
//                     for (subtree roots + pinned dirfrags) plus its recent
//                     load history.  Replay starts from the newest durable
//                     one; segments wholly before it can be trimmed.
//   * EExportCommit — this rank handed a subtree to `peer` (exporter side
//                     of a committed migration);
//   * EImportStart  — this rank adopted a subtree from `peer` (importer
//                     side of a commit, or a crash take-over).
//
// Entries carry simulated time only (tick + epoch) and a modeled on-journal
// byte size, so journal traffic is reportable without serializing anything.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "fs/namespace_tree.h"

namespace lunule::journal {

enum class EntryType : std::uint8_t {
  kUpdate,        // EUpdate: one metadata mutation (dir, frag)
  kSubtreeMap,    // ESubtreeMap: authority + load-history checkpoint
  kExportCommit,  // EExportCommit: subtree handed to `peer`
  kImportStart,   // EImportStart: subtree adopted from `peer`
};

[[nodiscard]] std::string_view entry_type_name(EntryType t);

/// The checkpoint payload of an ESubtreeMap entry: every unit the rank is
/// authoritative for (in deterministic namespace order) and the rank's
/// per-epoch load history, oldest first.
struct SubtreeSnapshot {
  std::vector<fs::SubtreeRef> owned;
  std::vector<double> load_history;
};

struct JournalEntry {
  EntryType type = EntryType::kUpdate;
  /// Monotonic per-journal sequence number, stamped by MdsJournal::append.
  std::uint64_t seq = 0;
  /// Sequence of the newest earlier entry this one depends on (0 = none),
  /// stamped by MdsJournal::append: a dir-scoped entry depends on the
  /// previous entry touching the same directory (create-before-child-create,
  /// export-commit-before-dependent-update), a checkpoint on the whole
  /// prefix.  Group commit makes contiguous prefixes durable, so a durable
  /// entry's dependency is always durable — replay audits exactly that
  /// (prefix consistency) and async mode relies on it.
  std::uint64_t dep_seq = 0;
  Tick tick = -1;
  EpochId epoch = -1;
  /// Namespace unit the entry is about (unused by kSubtreeMap).
  DirId dir = kNoDir;
  FragId frag = kWholeDir;
  /// Migration peer of kExportCommit / kImportStart (kNoMds otherwise).
  MdsId peer = kNoMds;
  /// Checkpoint payload; only kSubtreeMap entries carry one.
  SubtreeSnapshot snapshot;
};

/// Modeled on-journal size of an entry in bytes (CephFS EUpdates run from
/// hundreds of bytes to kilobytes; ESubtreeMap grows with the subtree map).
[[nodiscard]] std::uint64_t entry_bytes(const JournalEntry& e);

}  // namespace lunule::journal
