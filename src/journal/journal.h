// The per-rank, append-only metadata journal (CephFS MDLog analogue).
//
// Each MDS rank owns one MdsJournal: a sequence of fixed-size segments of
// typed entries with monotonic sequence numbers.  Appends land in memory
// first; a *flush* makes everything up to the current sequence durable
// (CephFS's group commit to the journal objects).  On a crash, only the
// durable prefix survives — entries past the last flush are genuinely lost,
// which is exactly the recovery behavior the fault benches measure.
//
// Segment lifecycle: a new segment opens every `segment_entries` appends.
// Segments whose entries all precede the newest *durable* ESubtreeMap are
// fully covered by that checkpoint and are trimmed (CephFS's LogSegment
// expiry); the journal length that a take-over must replay is therefore
// bounded by the checkpoint cadence, not the run length.
//
// Cost model: journaling consumes a slice of the owning rank's IOPS budget
// (`append_cost_ops` per entry, `flush_cost_ops` per group commit), charged
// by the cluster as journal debt against the next tick's budget — so
// journaling overhead is visible in throughput benches.  A stalled journal
// (the `journal_stall` fault) stops flushing; once the un-flushed backlog
// exceeds `max_unflushed_entries`, mutating operations are refused
// (journal-full backpressure), and a crash during the stall loses the whole
// backlog.
//
// Lifetime statistics (appends, bytes, flushes, trims) are monotonic and
// survive reset() — the invariant checker audits them against the cluster's
// journal counters.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "journal/journal_entry.h"

namespace lunule::journal {

struct JournalParams {
  /// Master switch.  Off by default: every existing scenario, bench and
  /// trace is byte-identical to the journal-free behavior.
  bool enabled = false;
  /// Entries per fixed-size segment.
  std::uint32_t segment_entries = 512;
  /// Ticks between group commits (1 = flush every tick, like CephFS's
  /// continuously-flushing MDLog).
  Tick flush_interval_ticks = 1;
  /// Un-flushed backlog (entries) beyond which mutating operations are
  /// refused until a flush drains it (journal-full backpressure).
  std::uint64_t max_unflushed_entries = 20000;
  /// IOPS-budget slice consumed per appended entry / per flush; charged as
  /// journal debt against the owning rank's next tick.
  double append_cost_ops = 0.04;
  double flush_cost_ops = 1.0;
  /// Replay-time model: a take-over replays the durable journal at this
  /// rate, plus a fixed base (rank rebind + journal open).
  double replay_entries_per_second = 2000.0;
  double replay_base_seconds = 1.0;
  /// Capacity fraction a rank loses while it replays an adopted journal.
  double replay_capacity_penalty = 0.3;
  /// Per-epoch decay applied to a checkpointed load history across the
  /// replay gap (the forecast signal goes stale while the journal sat
  /// unplayed).
  double history_decay_per_epoch = 0.7;
  /// Asynchronous completion mode (AsyncFS direction): mutating operations
  /// complete to the client at in-memory apply and journal IOPS debt is
  /// charged to a background durability lane instead of the foreground
  /// budget; `flush_interval_ticks` becomes the durability lag, not a
  /// completion gate (epoch checkpoints are no longer force-flushed).  Off
  /// by default: sync-mode runs are byte-identical to the pre-async
  /// behavior.  A crash in async mode loses acknowledged-but-unflushed ops
  /// — the documented loss window replay reports as `acked_lost_entries`.
  bool async_mode = false;
  /// Un-flushed backlog beyond which the background durability lane starts
  /// throttling foreground service: journal costs are charged as ordinary
  /// foreground debt until a group commit drains the backlog below the
  /// mark.  Only meaningful in async mode.
  std::uint64_t async_high_water_entries = 4096;
};

/// One fixed-size run of entries (`MdsJournal` trims whole segments).
struct JournalSegment {
  std::vector<JournalEntry> entries;
};

class MdsJournal {
 public:
  MdsJournal(MdsId rank, JournalParams params);

  [[nodiscard]] MdsId rank() const { return rank_; }
  [[nodiscard]] const JournalParams& params() const { return params_; }

  /// Stamps `e` with the next sequence number and appends it, opening a new
  /// segment when the tail segment is full.  Returns the assigned seq.
  std::uint64_t append(JournalEntry e);

  /// True when the un-flushed backlog is at the cap: mutating operations
  /// must stall until a flush succeeds.  The cap binds in async mode too —
  /// acknowledgement may precede durability, but the backlog stays bounded.
  [[nodiscard]] bool full() const {
    return unflushed() >= params_.max_unflushed_entries;
  }

  /// Async mode only: the un-flushed backlog crossed the high-water mark,
  /// so the background durability lane must throttle foreground service
  /// (journal costs revert to foreground debt until the backlog drains).
  [[nodiscard]] bool over_high_water() const {
    return params_.async_mode &&
           unflushed() >= params_.async_high_water_entries;
  }

  /// Group commit: everything appended so far becomes durable.  Returns
  /// false (and does nothing) when nothing is pending or the journal is
  /// inside a stall window at `now`.
  bool flush(Tick now);

  /// Cadenced flush driven by the cluster's tick loop: flushes when
  /// `flush_interval_ticks` have elapsed since the last successful flush.
  bool maybe_flush(Tick now);

  /// Fault injection: no flush can complete before tick `until` (the
  /// backing device stalled).  Appends continue and the backlog grows.
  void stall_until(Tick until) { stall_until_ = until; }
  [[nodiscard]] bool stalled(Tick now) const { return now < stall_until_; }

  /// Drops leading segments wholly covered by the newest durable
  /// ESubtreeMap.  Returns the number of segments trimmed.
  std::size_t trim();

  /// A revived rank restarts with an empty journal (the old incarnation's
  /// content was consumed by the take-over replay).  Sequence numbers keep
  /// counting and lifetime statistics are preserved.
  void reset();

  // -- Content ------------------------------------------------------------
  [[nodiscard]] const std::deque<JournalSegment>& segments() const {
    return segments_;
  }
  [[nodiscard]] std::uint64_t seq() const { return seq_; }
  [[nodiscard]] std::uint64_t durable_seq() const { return durable_seq_; }
  [[nodiscard]] std::uint64_t unflushed() const {
    return seq_ - durable_seq_;
  }
  /// Seq of the newest durable ESubtreeMap (0 = none yet).
  [[nodiscard]] std::uint64_t durable_subtree_map_seq() const {
    return durable_map_seq_;
  }
  [[nodiscard]] std::uint64_t entries_retained() const { return retained_; }
  /// Tick of the last successful (or no-op) group commit, -1 before any.
  [[nodiscard]] Tick last_flush_tick() const { return last_flush_tick_; }

  // -- Background durability lane (async mode) -----------------------------
  /// Absorbs an IOPS charge into the background lane instead of the
  /// foreground budget.
  void charge_background(double ops) {
    background_ops_ += ops;
    ++background_charges_;
  }
  /// Records one tick spent throttling foreground service because the
  /// backlog sat over the high-water mark.
  void note_throttle_tick() { ++throttle_ticks_; }

  // -- Lifetime statistics (monotonic, survive reset) ----------------------
  [[nodiscard]] std::uint64_t appends() const { return appends_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  [[nodiscard]] std::uint64_t segments_trimmed() const { return trimmed_; }
  /// Entries acknowledged to clients before they were durable (async mode
  /// appends; always 0 in sync mode).
  [[nodiscard]] std::uint64_t async_acked() const { return async_acked_; }
  /// IOPS debt absorbed by the background lane, and the number of charges.
  [[nodiscard]] double background_ops() const { return background_ops_; }
  [[nodiscard]] std::uint64_t background_charges() const {
    return background_charges_;
  }
  /// Ticks the backlog sat over the high-water mark (foreground throttled).
  [[nodiscard]] std::uint64_t throttle_ticks() const {
    return throttle_ticks_;
  }

 private:
  MdsId rank_;
  JournalParams params_;
  std::deque<JournalSegment> segments_;
  std::uint64_t seq_ = 0;
  std::uint64_t durable_seq_ = 0;
  /// Newest ESubtreeMap seq appended / made durable (0 = none).
  std::uint64_t map_seq_ = 0;
  std::uint64_t durable_map_seq_ = 0;
  std::uint64_t retained_ = 0;
  Tick stall_until_ = 0;
  Tick last_flush_tick_ = -1;
  /// Newest seq per directory, for dependency stamping (cleared on reset:
  /// the next incarnation's entries owe nothing to the consumed log).
  std::unordered_map<DirId, std::uint64_t> last_dir_seq_;
  std::uint64_t appends_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t trimmed_ = 0;
  std::uint64_t async_acked_ = 0;
  std::uint64_t background_charges_ = 0;
  double background_ops_ = 0.0;
  std::uint64_t throttle_ticks_ = 0;
};

}  // namespace lunule::journal
