// Crash-recovery replay over a dead rank's journal.
//
// A take-over rank does not receive the dead rank's state by fiat: it reads
// the *durable* prefix of the surviving journal and reconstructs
//   * the subtree-authority set — the newest durable ESubtreeMap snapshot,
//     patched with every later durable EImportStart (adopt) / EExportCommit
//     (hand-off) delta; and
//   * the Lunule load history — the checkpointed samples, decayed once per
//     epoch elapsed since the checkpoint (the forecast signal is stale by
//     exactly the replay gap).
// Entries past the last durable flush never made it to the backing store and
// are counted as lost, not replayed.
//
// Replay is a pure function of journal content: deterministic, no clocks, no
// side effects.  The cluster applies the result (re-pinning subtrees,
// restoring history, opening the replay window) in `MdsCluster::set_down`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "journal/journal.h"

namespace lunule::journal {

struct ReplayResult {
  /// Durable entries scanned to rebuild state.
  std::uint64_t entries_replayed = 0;
  /// Entries past the last durable flush — appended but never committed,
  /// gone with the crash.
  std::uint64_t lost_entries = 0;
  /// Of the lost entries, those already acknowledged to clients (async mode
  /// completes ops at in-memory apply, so the whole un-flushed tail was
  /// acknowledged; sync mode never acknowledges ahead of the backlog model
  /// and reports 0).  This is the documented async loss window — bounded by
  /// `max_unflushed_entries` and, between stalls, by the backlog one
  /// `flush_interval_ticks` cadence can accumulate.
  std::uint64_t acked_lost_entries = 0;
  /// Durable entries whose `dep_seq` dependency is not itself durable (or
  /// points forward).  Group commit makes contiguous prefixes durable, so
  /// the reconstruction is prefix-consistent and this must always be 0 —
  /// audited here and by invariant-checker section 9 rather than assumed.
  std::uint64_t dependency_violations = 0;
  /// Modeled replay wall time: base cost + entries / replay rate.  Zero when
  /// the journal never went durable (nothing to replay).
  double replay_seconds = 0.0;
  /// Epoch of the snapshot the reconstruction started from (-1 = none).
  EpochId checkpoint_epoch = -1;
  /// Reconstructed authority set, deterministic namespace order.
  std::vector<fs::SubtreeRef> owned;
  /// Reconstructed load history (oldest first), decayed across the gap
  /// between `checkpoint_epoch` and `now_epoch`.
  std::vector<double> load_history;
};

[[nodiscard]] ReplayResult replay_journal(const MdsJournal& j,
                                          EpochId now_epoch,
                                          const JournalParams& p);

/// Converts a modeled replay wall time into a whole-tick penalty window.
///
/// Boundary semantics the adoption path relies on:
///   * `replay_seconds <= 0` charges zero ticks — a journal that never went
///     durable has nothing to open, so the adopter pays no penalty window;
///   * exact-integer durations (including ones reconstructed through float
///     arithmetic, e.g. `1.0 + 2000/2000.0`) map to exactly that many ticks
///     and never round up an extra tick on representation noise;
///   * any strictly positive duration charges at least one tick (a nonzero
///     replay cannot complete mid-tick in the discrete-time model).
[[nodiscard]] Tick replay_window_ticks(double replay_seconds);

}  // namespace lunule::journal
