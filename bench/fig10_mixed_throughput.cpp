// Figure 10: per-MDS throughput over time under the mixed workload,
// Vanilla (a) vs Lunule (b).
//
// Shapes reproduced: Vanilla's per-MDS loads are highly skewed with
// ping-pong handoffs; Lunule's are tightly grouped, and the early-run
// aggregate throughput is substantially higher (paper: 1.6x during the
// first phase).
#include <iostream>

#include "bench_common.h"

namespace lunule {
namespace {

/// Mean over the first `frac` of a series.
double head_mean(const TimeSeries& s, double frac) {
  const auto take = static_cast<std::size_t>(
      static_cast<double>(s.size()) * frac);
  if (take == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < take; ++i) acc += s.at(i);
  return acc / static_cast<double>(take);
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.2, /*ticks=*/9000);
  sim::ShapeChecker checks;

  const sim::ScenarioResult vanilla = sim::run_scenario(
      opts.config(sim::WorkloadKind::kMixed, sim::BalancerKind::kVanilla));
  const sim::ScenarioResult lunule = sim::run_scenario(
      opts.config(sim::WorkloadKind::kMixed, sim::BalancerKind::kLunule));

  sim::print_series_bundle(std::cout,
                           "Figure 10(a): per-MDS IOPS, mixed, Vanilla",
                           vanilla.per_mds_iops, opts.report);
  sim::print_series_bundle(std::cout,
                           "Figure 10(b): per-MDS IOPS, mixed, Lunule",
                           lunule.per_mds_iops, opts.report);

  // Early-run clustered throughput comparison (paper: 48k vs 30k IOPS in
  // the first 50 minutes).
  const double v_head = head_mean(vanilla.aggregate_iops, 0.3);
  const double l_head = head_mean(lunule.aggregate_iops, 0.3);
  std::cout << "Early-run aggregate IOPS: Vanilla " << v_head << ", Lunule "
            << l_head << " (" << l_head / v_head << "x)\n";
  // The paper reports 1.6x during the first 50 minutes; our closed-loop
  // simulator reproduces the direction with a smaller margin because its
  // Zipf/Web client groups saturate their balanced shares earlier (see
  // EXPERIMENTS.md).
  checks.expect(l_head > 1.03 * v_head,
                "Mixed: Lunule's early-run aggregate throughput ahead "
                "(paper: 1.6x)");
  checks.expect(lunule.total_served == vanilla.total_served,
                "Mixed: both systems eventually serve the same fixed job "
                "volume (sanity)");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
