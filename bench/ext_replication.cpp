// Substrate study: hot-dirfrag read replication vs migration-based
// balancing.
//
// CephFS's other answer to read hotspots — besides migrating subtrees — is
// replicating hot dirfrags to peers (mds_bal_replicate_threshold), so reads
// spread without any authority change.  The paper evaluates balancers with
// replication at its (rarely-triggering) defaults; this bench explores the
// interaction on the Web workload, whose hottest section can exceed a
// single MDS's capacity:
//
//   Vanilla                 — migration only
//   Vanilla + replication   — CephFS's full production toolbox
//   Lunule                  — migration + dirfrag splitting
//   Lunule + replication    — both mechanisms together
//
// Expected shape: replication lifts the hot-fragment ceiling for both
// balancers (a single fragment's reads are no longer bounded by one MDS),
// and the combination is at least as good as either mechanism alone.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/parallel_runner.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.35, /*ticks=*/900);
  sim::ShapeChecker checks;

  struct Variant {
    const char* label;
    sim::BalancerKind balancer;
    double replicate_iops;
  };
  const Variant variants[] = {
      {"Vanilla", sim::BalancerKind::kVanilla, 0.0},
      {"Vanilla + replication", sim::BalancerKind::kVanilla, 400.0},
      {"Lunule", sim::BalancerKind::kLunule, 0.0},
      {"Lunule + replication", sim::BalancerKind::kLunule, 400.0},
  };

  std::vector<sim::ScenarioConfig> configs;
  for (const Variant& v : variants) {
    sim::ScenarioConfig cfg =
        opts.config(sim::WorkloadKind::kWeb, v.balancer);
    cfg.replicate_threshold_iops = v.replicate_iops;
    configs.push_back(cfg);
  }
  const auto results = sim::run_scenarios(configs);

  TablePrinter table({"Variant", "mean IF", "sustained IOPS",
                      "migrated inodes", "completion (s)"});
  double sustained[4];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sim::ScenarioResult& r = results[i];
    sustained[i] = static_cast<double>(r.total_served) /
                   std::max<double>(1.0, static_cast<double>(r.end_tick));
    table.add_row({variants[i].label, TablePrinter::fmt(r.mean_if, 3),
                   TablePrinter::fmt(sustained[i], 0),
                   TablePrinter::fmt(r.migrated_total),
                   TablePrinter::fmt(static_cast<std::int64_t>(r.end_tick))});
  }
  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Read replication vs migration on the Web workload");
  }

  checks.expect(sustained[1] > sustained[0],
                "replication lifts Vanilla's hot-fragment ceiling");
  checks.expect(sustained[3] >= sustained[2] * 0.98,
                "replication does not hurt Lunule");
  checks.expect(results[1].migrated_total <= results[0].migrated_total,
                "replication substitutes for some migration volume");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
