// Extension bench: the hotspot-absorbing proxy cache tier on a thundering
// herd.
//
// A celebrity file inside one shared directory is an *indivisible* hotspot:
// migration moves it whole (and helps nothing), dirfrag splitting divides a
// directory that is hot in a single spot, and even read replication only
// multiplies the serving ranks by a small constant.  The proxy tier
// (docs/CACHING.md) attacks the load itself — flash-crowd directories are
// promoted into a lease-based cache and repeated reads complete without
// touching any MDS until a mutation, split, migration, crash, or drain
// recalls the lease.
//
// Five runs of the same FlashCrowd fleet (90% of every client's traffic on
// one shared hot directory, Zipf-skewed within it):
//
//   Lunule              — balancer only (the hotspot is unsplittable);
//   Lunule+repl         — plus hot-dirfrag read replication;
//   Lunule+proxy        — plus the proxy tier;
//   Lunule crash        — balancer only, one rank crashing mid-crowd;
//   Lunule+proxy crash  — the tier riding out the same crash.
//
// The [SHAPE-CHECK] gates encode the acceptance bar: the tier absorbs a
// measurable share of MDS-served reads at equal total completed ops and
// equal-or-better tail JCT, and keeps doing so across a crash (run with
// LUNULE_VALIDATE=1 to additionally assert lease coherence every epoch).
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "common/table.h"

namespace lunule {
namespace {

constexpr double kCrashFraction = 1.0 / 3.0;  // crash lands mid-crowd

struct Variant {
  const char* label;
  bool replication = false;
  bool proxy = false;
  bool crash = false;
};

sim::ScenarioConfig make_config(const bench::BenchOptions& opts,
                                const Variant& v) {
  sim::ScenarioConfig cfg = opts.config(sim::WorkloadKind::kFlashCrowd,
                                        sim::BalancerKind::kLunule);
  cfg.n_mds = 4;
  if (v.replication) {
    cfg.replicate_threshold_iops = cfg.mds_capacity_iops * 0.3;
  }
  if (v.proxy) {
    cfg.proxy.enabled = true;
    cfg.proxy.lease_ticks = 20;
    cfg.proxy.promote_threshold_iops = cfg.mds_capacity_iops * 0.1;
    cfg.proxy.max_promoted = 4;
  }
  if (v.crash) {
    const auto at = static_cast<Tick>(
        static_cast<double>(opts.ticks) * kCrashFraction);
    cfg.faults.crash(/*mds=*/1, at, /*duration=*/30);
  }
  return cfg;
}

double tail_jct(const sim::ScenarioResult& r) {
  double tail = 0.0;
  for (const double jct : r.jct_seconds) tail = std::max(tail, jct);
  return tail;
}

int run(int argc, char** argv) {
  bench::BenchOptions opts = bench::BenchOptions::parse(
      argc, argv, /*scale=*/0.05, /*ticks=*/900, /*clients=*/32);
  sim::ShapeChecker checks;

  const Variant variants[] = {
      {"Lunule"},
      {"Lunule+repl", /*replication=*/true},
      {"Lunule+proxy", /*replication=*/false, /*proxy=*/true},
      {"Lunule crash", false, false, /*crash=*/true},
      {"Lunule+proxy crash", false, /*proxy=*/true, /*crash=*/true},
  };
  sim::ScenarioResult results[std::size(variants)];
  TablePrinter table({"Variant", "MDS-served", "absorbed", "grants",
                      "recalls", "done", "tail JCT", "mean IF"});
  for (std::size_t i = 0; i < std::size(variants); ++i) {
    results[i] = sim::run_scenario(make_config(opts, variants[i]));
    const sim::ScenarioResult& r = results[i];
    opts.dump_trace(r);
    table.add_row({variants[i].label, TablePrinter::fmt(r.total_served),
                   TablePrinter::fmt(r.proxy_reads_absorbed),
                   TablePrinter::fmt(r.proxy_lease_grants),
                   TablePrinter::fmt(r.proxy_lease_recalls),
                   TablePrinter::fmt(r.clients_done) + "/" +
                       TablePrinter::fmt(r.n_clients),
                   TablePrinter::fmt(tail_jct(r), 0) + " s",
                   TablePrinter::fmt(r.mean_if)});
  }

  const sim::ScenarioResult& base = results[0];
  const sim::ScenarioResult& repl = results[1];
  const sim::ScenarioResult& prox = results[2];
  const sim::ScenarioResult& crash_base = results[3];
  const sim::ScenarioResult& crash_prox = results[4];

  for (std::size_t i = 0; i < std::size(variants); ++i) {
    checks.expect(results[i].clients_done == results[i].n_clients,
                  std::string(variants[i].label) +
                      ": every client finishes");
  }
  checks.expect(base.proxy_reads_absorbed == 0 &&
                    repl.proxy_reads_absorbed == 0,
                "proxy-free variants absorb nothing (control)");
  checks.expect(prox.proxy_reads_absorbed > 0,
                "the tier absorbs reads on the thundering herd");
  checks.expect(prox.total_served < base.total_served,
                "absorbed reads come off the MDS-served count");
  checks.expect(
      prox.total_served + prox.proxy_reads_absorbed == base.total_served,
      "MDS-served + absorbed equals the tier-free total (conservation)");
  checks.expect(tail_jct(prox) <= tail_jct(base) * 1.02,
                "...at equal-or-better tail JCT");
  checks.expect(crash_prox.proxy_reads_absorbed > 0,
                "the tier keeps absorbing across a mid-crowd crash");
  checks.expect(crash_prox.proxy_lease_recalls > 0,
                "the crash (or its migrations) recalled at least one lease");
  checks.expect(crash_prox.total_served + crash_prox.proxy_reads_absorbed ==
                    crash_base.total_served,
                "conservation holds under the crash plan too");

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Thundering herd vs the proxy cache tier (FlashCrowd "
                "workload, Lunule balancer, 4 ranks)");
  }
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
