// Figure 9: imbalance factor over time under the mixed workload (four
// client groups: CNN, NLP, Web, Zipf), Vanilla vs Lunule.
//
// Shapes reproduced: Vanilla's IF fluctuates with large spikes as client
// groups complete at different times; Lunule keeps IF near zero throughout,
// and its run ends earlier (the workloads finish faster when balanced).
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.2, /*ticks=*/9000);
  sim::ShapeChecker checks;

  const sim::ScenarioResult vanilla = sim::run_scenario(
      opts.config(sim::WorkloadKind::kMixed, sim::BalancerKind::kVanilla));
  const sim::ScenarioResult lunule = sim::run_scenario(
      opts.config(sim::WorkloadKind::kMixed, sim::BalancerKind::kLunule));

  sim::print_series_columns(std::cout,
                            "Figure 9: IF over time, mixed workload",
                            {&vanilla.if_series, &lunule.if_series},
                            {"Vanilla", "Lunule"}, 10.0, opts.report);
  std::cout << "Vanilla: mean IF " << vanilla.mean_if << ", run "
            << vanilla.end_tick << " s\n"
            << "Lunule : mean IF " << lunule.mean_if << ", run "
            << lunule.end_tick << " s\n";

  checks.expect(lunule.mean_if < vanilla.mean_if,
                "Mixed: Lunule mean IF below Vanilla");
  checks.expect(lunule.mean_if < 0.35,
                "Mixed: Lunule keeps the cluster near balance");
  checks.expect(lunule.end_tick <= vanilla.end_tick,
                "Mixed: Lunule's curve is shorter (workloads finish "
                "no later than under Vanilla)");
  // Compare spikes after the initial one-hot transient (both systems
  // start with the whole namespace on MDS-1, so epoch 0 is ~1 for both).
  const std::size_t skip = std::min<std::size_t>(
      10, std::min(vanilla.if_series.size(), lunule.if_series.size()) / 2);
  const double vanilla_spike =
      max_value(vanilla.if_series.values().subspan(skip));
  const double lunule_spike =
      max_value(lunule.if_series.values().subspan(skip));
  checks.expect(vanilla_spike > 1.5 * lunule_spike,
                "Mixed: Vanilla shows much larger IF spikes after warm-up");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
