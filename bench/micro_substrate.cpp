// Microbenchmarks of the simulator substrate (google-benchmark): the
// namespace tree's hot paths, the access recorder, path resolution, the
// migration engine tick, and the end-to-end simulation throughput in
// operation-events per second — the budget every scenario bench draws on.
#include <benchmark/benchmark.h>

#include "fs/builder.h"
#include "fs/path_resolver.h"
#include "mds/cluster.h"
#include "mds/memory_model.h"
#include "sim/scenario.h"

namespace lunule {
namespace {

void BM_AuthResolutionCached(benchmark::State& state) {
  fs::NamespaceTree tree;
  const auto dirs = fs::build_imagenet_like(tree, "cnn", 1000, 8);
  // Pin a slice so resolution exercises both inherit and explicit paths.
  for (std::size_t i = 0; i < dirs.size(); i += 7) {
    tree.set_auth(dirs[i], static_cast<MdsId>(i % 5));
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.auth_of(dirs[rng.next_below(dirs.size())]));
  }
}
BENCHMARK(BM_AuthResolutionCached);

void BM_AuthResolutionInvalidated(benchmark::State& state) {
  // Worst case: every lookup follows a pin change (cold cache).
  fs::NamespaceTree tree;
  const auto dirs = fs::build_imagenet_like(tree, "cnn", 1000, 8);
  Rng rng(2);
  for (auto _ : state) {
    tree.set_auth(dirs[rng.next_below(dirs.size())],
                  static_cast<MdsId>(rng.next_below(5)));
    benchmark::DoNotOptimize(
        tree.auth_of(dirs[rng.next_below(dirs.size())]));
  }
}
BENCHMARK(BM_AuthResolutionInvalidated);

void BM_CreateFile(benchmark::State& state) {
  fs::NamespaceTree tree;
  const auto dirs = fs::build_private_dirs(tree, "md", 64, 0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.create_file(dirs[rng.next_below(dirs.size())]));
  }
}
BENCHMARK(BM_CreateFile);

void BM_FragmentDirectory(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    fs::NamespaceTree tree;
    const DirId d = tree.add_dir(tree.root(), "big");
    tree.add_files(d, 10000);
    state.ResumeTiming();
    tree.fragment_dir(d, 5);  // 32 frags
  }
}
BENCHMARK(BM_FragmentDirectory);

void BM_PathResolve(benchmark::State& state) {
  fs::NamespaceTree tree;
  fs::build_web_tree(tree, "web", 20, 15, 10);
  const fs::PathResolver resolver(tree);
  Rng rng(4);
  for (auto _ : state) {
    const auto s = rng.next_below(20);
    const auto d = rng.next_below(15);
    benchmark::DoNotOptimize(resolver.resolve(
        "/web/section" + std::to_string(s) + "/dir" + std::to_string(d)));
  }
}
BENCHMARK(BM_PathResolve);

void BM_ClusterServe(benchmark::State& state) {
  fs::NamespaceTree tree;
  const auto dirs = fs::build_private_dirs(tree, "w", 100, 1000);
  mds::ClusterParams cp;
  cp.n_mds = 5;
  cp.mds_capacity_iops = 1e9;  // never saturate: measure the serve path
  mds::MdsCluster cluster(tree, cp);
  cluster.begin_tick(0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.try_serve(
        dirs[rng.next_below(dirs.size())],
        static_cast<FileIndex>(rng.next_below(1000))));
  }
}
BENCHMARK(BM_ClusterServe);

void BM_MigrationEngineTick(benchmark::State& state) {
  fs::NamespaceTree tree;
  const auto dirs = fs::build_private_dirs(tree, "w", 64, 500);
  mds::MigrationParams mp;
  mp.bandwidth_inodes_per_tick = 1.0;  // keep tasks in flight
  mp.hot_abort_iops = 1e9;
  mds::MigrationEngine engine(tree, mp);
  for (int i = 0; i < 8; ++i) {
    engine.submit({.dir = dirs[static_cast<std::size_t>(i)]},
                  static_cast<MdsId>(1 + i % 4));
  }
  for (auto _ : state) {
    engine.tick();
  }
}
BENCHMARK(BM_MigrationEngineTick);

void BM_MemoryCensus(benchmark::State& state) {
  fs::NamespaceTree tree;
  fs::build_imagenet_like(tree, "cnn", 1000, 128);
  const mds::MemoryParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mds::memory_census(tree, 5, params));
  }
}
BENCHMARK(BM_MemoryCensus);

void BM_EndToEndSimulation(benchmark::State& state) {
  // Whole-scenario throughput: simulated op-events per wall second.
  sim::ScenarioConfig cfg;
  cfg.workload = sim::WorkloadKind::kZipf;
  cfg.balancer = sim::BalancerKind::kLunule;
  cfg.n_clients = 50;
  cfg.scale = 0.05;
  cfg.max_ticks = 400;
  std::uint64_t served = 0;
  for (auto _ : state) {
    const sim::ScenarioResult r = sim::run_scenario(cfg);
    served += r.total_served;
    benchmark::DoNotOptimize(r.total_served);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lunule

BENCHMARK_MAIN();
