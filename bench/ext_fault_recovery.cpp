// Extension bench: metadata load re-convergence after an MDS crash.
//
// Lunule's Imbalance Factor is defined over the alive cluster, so a crash
// is just a very large, very sudden imbalance: the failed rank's subtrees
// pile onto the survivors and the balancer must redistribute them.  This
// bench crashes one MDS mid-run (with recovery two minutes later) under the
// Zipf workload and compares how quickly each policy drives the observed IF
// back under Lunule's trigger threshold:
//
//   Lunule         — IF-triggered, workload-aware selection: re-converges
//                    fastest, but the take-over is amnesiac (the survivors
//                    inherit subtrees with no load record);
//   Lunule+journal — same policy with the metadata journal on: take-over is
//                    replay-based (costs modeled replay time, loses the
//                    un-flushed tail) but the primary adopter inherits the
//                    crashed rank's decayed load history, so the forecast
//                    does not restart from zero;
//   Vanilla        — relative trigger + heat selection: slower, may
//                    over-migrate;
//   Dir-Hash       — static placement, nothing re-balances after the
//                    take-over.
//
// The re-convergence time (seconds from the crash until IF first drops
// below the threshold; "never" if it does not within the run) is the
// recovery-oriented analogue of the paper's Fig. 6 balance comparison.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

namespace lunule {
namespace {

constexpr Tick kCrashTick = 60;
constexpr Tick kDownTicks = 120;

std::string fmt_reconverge(double seconds) {
  if (seconds < 0.0) return "never";
  return TablePrinter::fmt(seconds, 0) + " s";
}

int run(int argc, char** argv) {
  bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.3, /*ticks=*/900,
                                 /*clients=*/60);
  sim::ShapeChecker checks;

  TablePrinter table({"Balancer", "reconverge", "takeovers",
                      "aborted migrations", "replay", "lost entries",
                      "mean IF", "served ops"});
  double lunule_rec = -1.0;
  double journal_rec = -1.0;
  double journal_replay = 0.0;
  double vanilla_rec = -1.0;
  double hash_rec = -1.0;

  struct Row {
    sim::BalancerKind balancer;
    bool journaled;
    const char* label;
  };
  const Row rows[] = {
      {sim::BalancerKind::kLunule, false, "Lunule"},
      {sim::BalancerKind::kLunule, true, "Lunule+journal"},
      {sim::BalancerKind::kVanilla, false, "Vanilla"},
      {sim::BalancerKind::kDirHash, false, "Dir-Hash"},
  };
  for (const Row& row : rows) {
    sim::ScenarioConfig cfg = opts.config(sim::WorkloadKind::kZipf,
                                          row.balancer);
    // Crash rank 1 while the client wave is hot; it rejoins (empty-handed,
    // like a standby taking over the rank) two simulated minutes later.
    cfg.faults.crash(/*m=*/1, kCrashTick, kDownTicks);
    cfg.journal.enabled = row.journaled;
    const sim::ScenarioResult r = sim::run_scenario(cfg);
    opts.dump_trace(r);
    table.add_row({row.label,
                   fmt_reconverge(r.reconverge_seconds),
                   TablePrinter::fmt(r.takeover_subtrees),
                   TablePrinter::fmt(r.fault_migration_aborts),
                   TablePrinter::fmt(r.replay_seconds, 2) + " s",
                   TablePrinter::fmt(r.lost_entries),
                   TablePrinter::fmt(r.mean_if, 3),
                   TablePrinter::fmt(r.total_served)});
    if (row.journaled) {
      journal_rec = r.reconverge_seconds;
      journal_replay = r.replay_seconds;
    } else {
      switch (row.balancer) {
        case sim::BalancerKind::kLunule:  lunule_rec = r.reconverge_seconds; break;
        case sim::BalancerKind::kVanilla: vanilla_rec = r.reconverge_seconds; break;
        default:                          hash_rec = r.reconverge_seconds; break;
      }
    }
  }

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Fault recovery: IF re-convergence after an MDS crash "
                "(Zipf workload, crash at t=60 s, recovery at t=180 s)");
  }

  // -1 means "never within the run": treat it as +infinity when comparing.
  const auto as_time = [](double rec) {
    return rec < 0.0 ? 1e18 : rec;
  };
  checks.expect(lunule_rec >= 0.0,
                "Lunule re-converges within the run after the crash");
  checks.expect(as_time(lunule_rec) <= as_time(vanilla_rec),
                "...and no slower than the vanilla balancer");
  checks.expect(as_time(lunule_rec) <= as_time(hash_rec),
                "...and no slower than static hash placement (which cannot "
                "re-balance at all)");
  checks.expect(journal_replay > 0.0,
                "the journaled take-over pays a nonzero replay time");
  checks.expect(as_time(journal_rec) <= as_time(lunule_rec),
                "...and the replayed load history re-converges no slower "
                "than the amnesiac take-over");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
