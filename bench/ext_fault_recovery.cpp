// Extension bench: metadata load re-convergence after an MDS crash.
//
// Lunule's Imbalance Factor is defined over the alive cluster, so a crash
// is just a very large, very sudden imbalance: the failed rank's subtrees
// pile onto the survivors and the balancer must redistribute them.  This
// bench crashes one MDS mid-run (with recovery two minutes later) under the
// Zipf workload and compares how quickly each policy drives the observed IF
// back under Lunule's trigger threshold:
//
//   Lunule   — IF-triggered, workload-aware selection: re-converges fastest;
//   Vanilla  — relative trigger + heat selection: slower, may over-migrate;
//   Dir-Hash — static placement, nothing re-balances after the take-over.
//
// The re-convergence time (seconds from the crash until IF first drops
// below the threshold; "never" if it does not within the run) is the
// recovery-oriented analogue of the paper's Fig. 6 balance comparison.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

namespace lunule {
namespace {

constexpr Tick kCrashTick = 60;
constexpr Tick kDownTicks = 120;

std::string fmt_reconverge(double seconds) {
  if (seconds < 0.0) return "never";
  return TablePrinter::fmt(seconds, 0) + " s";
}

int run(int argc, char** argv) {
  bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.3, /*ticks=*/900,
                                 /*clients=*/60);
  sim::ShapeChecker checks;

  TablePrinter table({"Balancer", "reconverge", "takeovers",
                      "aborted migrations", "mean IF", "served ops"});
  double lunule_rec = -1.0;
  double vanilla_rec = -1.0;
  double hash_rec = -1.0;

  for (const sim::BalancerKind b :
       {sim::BalancerKind::kLunule, sim::BalancerKind::kVanilla,
        sim::BalancerKind::kDirHash}) {
    sim::ScenarioConfig cfg = opts.config(sim::WorkloadKind::kZipf, b);
    // Crash rank 1 while the client wave is hot; it rejoins (empty-handed,
    // like a standby taking over the rank) two simulated minutes later.
    cfg.faults.crash(/*m=*/1, kCrashTick, kDownTicks);
    const sim::ScenarioResult r = sim::run_scenario(cfg);
    opts.dump_trace(r);
    table.add_row({std::string(sim::balancer_name(b)),
                   fmt_reconverge(r.reconverge_seconds),
                   TablePrinter::fmt(r.takeover_subtrees),
                   TablePrinter::fmt(r.fault_migration_aborts),
                   TablePrinter::fmt(r.mean_if, 3),
                   TablePrinter::fmt(r.total_served)});
    switch (b) {
      case sim::BalancerKind::kLunule:  lunule_rec = r.reconverge_seconds; break;
      case sim::BalancerKind::kVanilla: vanilla_rec = r.reconverge_seconds; break;
      default:                          hash_rec = r.reconverge_seconds; break;
    }
  }

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Fault recovery: IF re-convergence after an MDS crash "
                "(Zipf workload, crash at t=60 s, recovery at t=180 s)");
  }

  // -1 means "never within the run": treat it as +infinity when comparing.
  const auto as_time = [](double rec) {
    return rec < 0.0 ? 1e18 : rec;
  };
  checks.expect(lunule_rec >= 0.0,
                "Lunule re-converges within the run after the crash");
  checks.expect(as_time(lunule_rec) <= as_time(vanilla_rec),
                "...and no slower than the vanilla balancer");
  checks.expect(as_time(lunule_rec) <= as_time(hash_rec),
                "...and no slower than static hash placement (which cannot "
                "re-balance at all)");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
