// Shared scaffolding for the figure/table bench binaries.
//
// Every bench accepts:
//   --scale=X    dataset/request scale multiplier (default per bench)
//   --clients=N  client count (default 100, like the paper)
//   --ticks=N    simulation horizon in seconds
//   --csv        emit CSV instead of aligned tables
//   --buckets=N  time buckets for series printing
//   --seed=N     scenario seed
//   --trace=F    write the flight-recorder JSON dump of the scenario runs
//                to F (one file per run: F, F.2, F.3, ... in run order).
//                Honored by the benches that call dump_trace (currently
//                fig07_throughput and table_overhead); the other binaries
//                accept the flag but write nothing.
//   --json=F     write machine-readable per-cell results to F.  Honored by
//                the benches that read opts.json_path (currently
//                latency_profile and ext_async_journal); the other binaries
//                accept the flag but write nothing.
//
// Each bench ends with a [SHAPE-CHECK] section asserting the paper's
// qualitative claims; the process exit code is non-zero if any check fails,
// so the bench suite doubles as a reproduction regression test.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "sim/report.h"
#include "sim/scenario.h"

namespace lunule::bench {

struct BenchOptions {
  double scale = 0.25;
  std::size_t clients = 100;
  Tick ticks = 1800;
  std::uint64_t seed = 42;
  std::string trace_path;  // empty = no trace dump
  std::string json_path;   // empty = no machine-readable result file
  sim::ReportOptions report;

  static BenchOptions parse(int argc, char** argv, double default_scale,
                            Tick default_ticks,
                            std::size_t default_clients = 100) {
    Flags flags(argc, argv);
    BenchOptions o;
    o.scale = flags.get_double("scale", default_scale);
    o.clients =
        static_cast<std::size_t>(flags.get_int("clients",
                                               static_cast<std::int64_t>(
                                                   default_clients)));
    o.ticks = flags.get_int("ticks", default_ticks);
    o.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    o.report.csv = flags.get_bool("csv", false);
    o.report.buckets =
        static_cast<std::size_t>(flags.get_int("buckets", 12));
    o.trace_path = flags.get("trace", "");
    o.json_path = flags.get("json", "");
    flags.check_unused();
    return o;
  }

  /// Writes `result`'s flight-recorder dump when --trace was given.  The
  /// first dump goes to the given path, later ones to path.2, path.3, ...
  /// so multi-scenario benches keep every run.  Call sites that never dump
  /// pay nothing.
  void dump_trace(const sim::ScenarioResult& result) {
    if (trace_path.empty()) return;
    ++trace_dumps_;
    std::string path = trace_path;
    if (trace_dumps_ > 1) path += "." + std::to_string(trace_dumps_);
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write trace to " << path << "\n";
      return;
    }
    out << result.trace_json << "\n";
    std::cout << "trace written to " << path << "\n";
  }

  [[nodiscard]] sim::ScenarioConfig config(sim::WorkloadKind w,
                                           sim::BalancerKind b) const {
    sim::ScenarioConfig cfg;
    cfg.workload = w;
    cfg.balancer = b;
    cfg.n_clients = clients;
    cfg.scale = scale;
    cfg.max_ticks = ticks;
    cfg.seed = seed;
    cfg.capture_trace = !trace_path.empty();
    return cfg;
  }

 private:
  int trace_dumps_ = 0;
};

inline int finish(const sim::ShapeChecker& checks) {
  checks.print(std::cout);
  return checks.exit_code();
}

}  // namespace lunule::bench
