// Shared scaffolding for the figure/table bench binaries.
//
// Every bench accepts:
//   --scale=X    dataset/request scale multiplier (default per bench)
//   --clients=N  client count (default 100, like the paper)
//   --ticks=N    simulation horizon in seconds
//   --csv        emit CSV instead of aligned tables
//   --buckets=N  time buckets for series printing
//   --seed=N     scenario seed
//
// Each bench ends with a [SHAPE-CHECK] section asserting the paper's
// qualitative claims; the process exit code is non-zero if any check fails,
// so the bench suite doubles as a reproduction regression test.
#pragma once

#include <iostream>

#include "common/flags.h"
#include "sim/report.h"
#include "sim/scenario.h"

namespace lunule::bench {

struct BenchOptions {
  double scale = 0.25;
  std::size_t clients = 100;
  Tick ticks = 1800;
  std::uint64_t seed = 42;
  sim::ReportOptions report;

  static BenchOptions parse(int argc, char** argv, double default_scale,
                            Tick default_ticks,
                            std::size_t default_clients = 100) {
    Flags flags(argc, argv);
    BenchOptions o;
    o.scale = flags.get_double("scale", default_scale);
    o.clients =
        static_cast<std::size_t>(flags.get_int("clients",
                                               static_cast<std::int64_t>(
                                                   default_clients)));
    o.ticks = flags.get_int("ticks", default_ticks);
    o.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    o.report.csv = flags.get_bool("csv", false);
    o.report.buckets =
        static_cast<std::size_t>(flags.get_int("buckets", 12));
    flags.check_unused();
    return o;
  }

  [[nodiscard]] sim::ScenarioConfig config(sim::WorkloadKind w,
                                           sim::BalancerKind b) const {
    sim::ScenarioConfig cfg;
    cfg.workload = w;
    cfg.balancer = b;
    cfg.n_clients = clients;
    cfg.scale = scale;
    cfg.max_ticks = ticks;
    cfg.seed = seed;
    return cfg;
  }
};

inline int finish(const sim::ShapeChecker& checks) {
  checks.print(std::cout);
  return checks.exit_code();
}

}  // namespace lunule::bench
