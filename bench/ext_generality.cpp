// Extension bench (paper §3.4, "Generality of Lunule"): the IF model
// applied to a hash-based metadata service.
//
// The paper argues its imbalance-factor model carries over to hash-based
// metadata management (IndexFS-style), while the subtree selector does not.
// This bench substantiates the claim on the Web workload:
//
//   Dir-Hash     — static hash placement, no re-balancing (the baseline of
//                  Fig. 13(b)/14);
//   Lunule-Hash  — the same placement plus IF-triggered re-pinning of the
//                  hottest shards (Algorithm 1 for roles/amounts, observed
//                  per-shard load instead of mIndex for selection);
//   Lunule       — full dynamic subtree partitioning.
//
// Expected shape: Lunule-Hash removes most of Dir-Hash's request skew
// (the IF model generalizes), while full Lunule keeps the locality
// advantage (fewest forwards) — exactly the trade-off §3.4 describes.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.35, /*ticks=*/900);
  sim::ShapeChecker checks;

  TablePrinter table({"Service", "mean IF", "sustained IOPS", "forwards",
                      "migrated inodes"});
  double hash_if = 0.0;
  double lunule_hash_if = 0.0;
  double hash_iops = 0.0;
  double lunule_hash_iops = 0.0;
  std::uint64_t lunule_forwards = 0;
  std::uint64_t lunule_hash_forwards = 0;

  for (const sim::BalancerKind b :
       {sim::BalancerKind::kDirHash, sim::BalancerKind::kLunuleHash,
        sim::BalancerKind::kLunule}) {
    const sim::ScenarioResult r =
        sim::run_scenario(opts.config(sim::WorkloadKind::kWeb, b));
    const double sustained =
        static_cast<double>(r.total_served) /
        std::max<double>(1.0, static_cast<double>(r.end_tick));
    table.add_row({std::string(sim::balancer_name(b)),
                   TablePrinter::fmt(r.mean_if, 3),
                   TablePrinter::fmt(sustained, 0),
                   TablePrinter::fmt(r.total_forwards),
                   TablePrinter::fmt(r.migrated_total)});
    switch (b) {
      case sim::BalancerKind::kDirHash:
        hash_if = r.mean_if;
        hash_iops = sustained;
        break;
      case sim::BalancerKind::kLunuleHash:
        lunule_hash_if = r.mean_if;
        lunule_hash_iops = sustained;
        lunule_hash_forwards = r.total_forwards;
        break;
      default:
        lunule_forwards = r.total_forwards;
        break;
    }
  }

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Generality extension: IF model on a hash-based service "
                "(Web workload)");
  }

  checks.expect(lunule_hash_if < hash_if,
                "IF-driven re-pinning improves the static hash placement's "
                "balance (the IF model generalizes, paper §3.4)");
  checks.expect(lunule_hash_iops > hash_iops,
                "...and its sustained throughput");
  checks.expect(lunule_forwards < lunule_hash_forwards,
                "subtree partitioning keeps the locality advantage (fewer "
                "forwards than any hash placement)");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
