# Bench targets: one binary per reproduced table/figure, all emitted into
# build/bench/ (and nothing else lands there, so `for b in build/bench/*`
# runs the whole harness).
function(lunule_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  target_link_libraries(${name} PRIVATE lunule_sim lunule_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

lunule_bench(table1_workloads)
lunule_bench(fig02_request_distribution)
lunule_bench(fig03_per_mds_throughput)
lunule_bench(fig04_migrated_inodes)
lunule_bench(fig06_imbalance_factor)
lunule_bench(fig07_throughput)
lunule_bench(fig08_end_to_end)
lunule_bench(fig09_mixed_if)
lunule_bench(fig10_mixed_throughput)
lunule_bench(fig11_jct_cdf)
lunule_bench(fig12_dynamics)
lunule_bench(fig13_scalability)
lunule_bench(fig14_dirhash)
lunule_bench(table_overhead)

# Microbenchmarks use google-benchmark.
lunule_bench(micro_core)
target_link_libraries(micro_core PRIVATE benchmark::benchmark)

# Extension and ablation benches.
lunule_bench(ext_generality)
lunule_bench(ablation_lunule)
lunule_bench(ablation_urgency)
lunule_bench(micro_substrate)
target_link_libraries(micro_substrate PRIVATE benchmark::benchmark)
lunule_bench(latency_profile)
lunule_bench(ext_adaptive_selection)
lunule_bench(ext_replication)
lunule_bench(ext_fault_recovery)
lunule_bench(table_journal_overhead)
lunule_bench(micro_hotpath)
lunule_bench(ext_elasticity)
lunule_bench(ext_proxy_cache)
lunule_bench(ext_async_journal)
