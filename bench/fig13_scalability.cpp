// Figure 13: (a) MDS-cluster scalability under the MDtest-create workload
// (1..16 MDSs, client load scaled with the cluster), and (b) Lunule vs
// Dir-Hash vs Vanilla on the Web workload.
//
// Shapes reproduced: near-linear scaling of peak metadata throughput up to
// 16 MDSs (paper: >112k req/s at 16 MDSs); on Web, Lunule outperforms both
// Dir-Hash and Vanilla (paper: up to 22.2%).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.35, /*ticks=*/900);
  sim::ShapeChecker checks;

  // (a) Scalability sweep on MDtest create.  MDtest clients are not
  // rate-limited application code: a single instance can saturate an MDS
  // by itself, so the offered per-client rate is set near the MDS
  // capacity (the paper's 16-MDS point delivers >112k req/s from its
  // client fleet).
  TablePrinter scaling({"MDSs", "clients", "peak IOPS", "per-MDS",
                        "linear-ideal", "efficiency"});
  std::vector<double> peaks;
  std::vector<double> sizes;
  double base_peak = 0.0;
  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
    sim::ScenarioConfig cfg =
        opts.config(sim::WorkloadKind::kMd, sim::BalancerKind::kLunule);
    cfg.n_mds = n;
    cfg.n_clients = 8 * n;  // grow offered load with the cluster
    cfg.client_rate = 1200.0;
    cfg.stop_when_done = false;
    const sim::ScenarioResult r = sim::run_scenario(cfg);
    if (n == 1) base_peak = r.peak_aggregate_iops;
    const double ideal = base_peak * static_cast<double>(n);
    scaling.add_row(
        {TablePrinter::fmt(static_cast<std::uint64_t>(n)),
         TablePrinter::fmt(static_cast<std::uint64_t>(cfg.n_clients)),
         TablePrinter::fmt(r.peak_aggregate_iops, 0),
         TablePrinter::fmt(r.peak_aggregate_iops / static_cast<double>(n),
                           0),
         TablePrinter::fmt(ideal, 0),
         TablePrinter::fmt(100.0 * r.peak_aggregate_iops / ideal, 1) + "%"});
    peaks.push_back(r.peak_aggregate_iops);
    sizes.push_back(static_cast<double>(n));
  }
  if (opts.report.csv) {
    scaling.print_csv(std::cout);
  } else {
    scaling.print(std::cout,
                  "Figure 13(a): Lunule scalability, MDtest create");
  }
  // Linearity: R^2 of peak vs ideal-linear prediction.
  std::vector<double> predicted;
  for (const double n : sizes) predicted.push_back(base_peak * n);
  const double r2 = r_squared(peaks, predicted);
  std::cout << "R^2 against perfect linear scaling: " << r2 << "\n";
  checks.expect(r2 > 0.95, "13a: near-linear scaling to 16 MDSs");
  checks.expect(peaks.back() > 0.7 * base_peak * 16.0,
                "13a: 16-MDS efficiency at least 70% of linear");

  // (b) Web workload: Lunule vs Dir-Hash vs Vanilla.
  TablePrinter web({"Balancer", "sustained IOPS", "mean IF", "forwards"});
  double lunule_iops = 0.0;
  double hash_iops = 0.0;
  double vanilla_iops = 0.0;
  for (const sim::BalancerKind b :
       {sim::BalancerKind::kVanilla, sim::BalancerKind::kDirHash,
        sim::BalancerKind::kLunule}) {
    const sim::ScenarioResult r =
        sim::run_scenario(opts.config(sim::WorkloadKind::kWeb, b));
    const double sustained =
        static_cast<double>(r.total_served) /
        std::max<double>(1.0, static_cast<double>(r.end_tick));
    if (b == sim::BalancerKind::kLunule) lunule_iops = sustained;
    if (b == sim::BalancerKind::kDirHash) hash_iops = sustained;
    if (b == sim::BalancerKind::kVanilla) vanilla_iops = sustained;
    web.add_row({std::string(sim::balancer_name(b)),
                 TablePrinter::fmt(sustained, 0),
                 TablePrinter::fmt(r.mean_if, 3),
                 TablePrinter::fmt(r.total_forwards)});
  }
  if (opts.report.csv) {
    web.print_csv(std::cout);
  } else {
    web.print(std::cout, "Figure 13(b): Web workload comparison");
  }
  checks.expect(lunule_iops > hash_iops,
                "13b: Lunule outperforms Dir-Hash on Web "
                "(paper: up to 22.2%)");
  checks.expect(lunule_iops >= vanilla_iops * 0.98,
                "13b: Lunule at least matches Vanilla on Web");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
