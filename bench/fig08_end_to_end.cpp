// Figure 8: end-to-end job completion time with data access enabled, for
// CNN, NLP, Zipf and Web (MD excluded, as in the paper) under Vanilla,
// GreedySpill and Lunule.
//
// Shapes reproduced: Lunule shortens job completion time on CNN/NLP/Zipf
// (paper: 18.6-64.6% vs Vanilla); the Web gains are limited because its
// imbalance is mild and the data path dilutes the metadata speedup.
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.15, /*ticks=*/12000);
  const sim::WorkloadKind workloads[] = {
      sim::WorkloadKind::kCnn, sim::WorkloadKind::kNlp,
      sim::WorkloadKind::kZipf, sim::WorkloadKind::kWeb};
  const sim::BalancerKind balancers[] = {sim::BalancerKind::kVanilla,
                                         sim::BalancerKind::kGreedySpill,
                                         sim::BalancerKind::kLunule};

  sim::ShapeChecker checks;
  TablePrinter table({"Workload", "Balancer", "mean JCT (s)", "p50 (s)",
                      "p99 (s)", "jobs done", "vs Vanilla"});

  for (const sim::WorkloadKind w : workloads) {
    double vanilla_mean = 0.0;
    double lunule_mean = 0.0;
    for (const sim::BalancerKind b : balancers) {
      sim::ScenarioConfig cfg = opts.config(w, b);
      cfg.data_enabled = true;
      const sim::ScenarioResult r = sim::run_scenario(cfg);
      const bool complete = r.clients_done == r.n_clients;
      const double mean_jct =
          r.jct_seconds.empty() ? static_cast<double>(r.end_tick)
                                : mean(r.jct_seconds);
      if (b == sim::BalancerKind::kVanilla) vanilla_mean = mean_jct;
      if (b == sim::BalancerKind::kLunule) lunule_mean = mean_jct;
      table.add_row(
          {std::string(sim::workload_name(w)),
           std::string(sim::balancer_name(b)),
           TablePrinter::fmt(mean_jct, 0),
           r.jct_seconds.empty() ? "-"
                                 : TablePrinter::fmt(
                                       percentile(r.jct_seconds, 50), 0),
           r.jct_seconds.empty() ? "-"
                                 : TablePrinter::fmt(
                                       percentile(r.jct_seconds, 99), 0),
           TablePrinter::fmt(static_cast<std::uint64_t>(r.clients_done)) +
               "/" +
               TablePrinter::fmt(static_cast<std::uint64_t>(r.n_clients)),
           b == sim::BalancerKind::kVanilla
               ? "-"
               : TablePrinter::pct(mean_jct / vanilla_mean - 1.0)});
      checks.expect(complete || b == sim::BalancerKind::kGreedySpill,
                    std::string(sim::workload_name(w)) + "/" +
                        std::string(sim::balancer_name(b)) +
                        ": all jobs complete within the horizon");
    }
    if (w != sim::WorkloadKind::kWeb) {
      checks.expect(lunule_mean < vanilla_mean,
                    std::string(sim::workload_name(w)) +
                        ": Lunule shortens mean JCT vs Vanilla "
                        "(paper: 18.6-64.6%)");
    }
  }

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Figure 8: job completion time with data access enabled");
  }
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
