// Extension bench: the elastic MDS pool vs a fixed 16-rank deployment.
//
// A metadata cluster sized for its peak wastes rank-hours whenever traffic
// is below peak.  The autoscaler (docs/ELASTICITY.md) grows the serving set
// from a small floor as load-signal streaks demand it and drains ranks back
// out when utilization falls, paying a journal cold-start window per
// activation.  This bench runs the same Lunule balancer and client fleet
// against both deployments on two traffic shapes:
//
//   diurnal     — five client waves ramping up to a midday peak and back
//                 down (the valley load fits in the two-rank floor);
//   flash crowd — a light long-running baseline plus a sudden burst of
//                 short jobs one third into the run.
//
// Scored on the two axes that matter for an elastic pool:
//   rank-seconds — Σ over ticks of the serving rank count (the bill);
//   tail JCT     — the slowest client's job duration (the SLO).
//
// The [SHAPE-CHECK] gates require the elastic pool to be strictly cheaper
// in rank-seconds on both shapes while keeping tail JCT no worse than the
// fixed pool, and to actually exercise both directions of scaling.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "common/zipf.h"
#include "fs/builder.h"
#include "workloads/zipf_read.h"

namespace lunule {
namespace {

constexpr std::size_t kPoolRanks = 16;
constexpr std::size_t kFloorRanks = 2;
constexpr double kClientRate = 150.0;
constexpr std::uint32_t kFilesPerDir = 1000;

/// One client to launch: when it starts and how many requests its job is.
struct Wave {
  Tick start = 0;
  std::uint64_t requests = 0;
};

/// Client launch plans for the two traffic shapes.  Request counts are in
/// ops (a client issues ~kClientRate of them per second when unthrottled),
/// scaled by --scale like every other bench.
std::vector<Wave> diurnal_waves(const bench::BenchOptions& opts) {
  // Wave sizes ramp 6 -> 12 -> 18 -> 12 -> 6 like a day of traffic.  Each
  // wave launches at 60% of a job's (scale-adjusted) duration, so adjacent
  // waves overlap into a midday peak of ~26 concurrent clients that a
  // two-rank floor cannot serve, then ebb away again.
  const double job_seconds =
      static_cast<double>(opts.ticks) / 5.0 * opts.scale;
  const auto job = static_cast<std::uint64_t>(job_seconds * kClientRate);
  const auto phase = static_cast<Tick>(job_seconds * 0.6);
  std::vector<Wave> waves;
  const std::size_t sizes[] = {6, 12, 18, 12, 6};
  for (std::size_t w = 0; w < 5; ++w) {
    for (std::size_t c = 0; c < sizes[w]; ++c) {
      waves.push_back({static_cast<Tick>(w) * phase, job});
    }
  }
  return waves;
}

std::vector<Wave> flash_crowd_waves(const bench::BenchOptions& opts) {
  // Eight baseline clients run long jobs from t=0; thirty short jobs slam
  // in together one third into the run (a release-day crowd) and drain
  // away, leaving the baseline to finish on the scaled-down pool.
  const auto long_job = static_cast<std::uint64_t>(
      static_cast<double>(opts.ticks) * 0.7 * kClientRate * opts.scale);
  const auto short_job = long_job / 4;
  std::vector<Wave> waves;
  for (std::size_t c = 0; c < 8; ++c) waves.push_back({0, long_job});
  const auto burst = static_cast<Tick>(opts.ticks / 3);
  for (std::size_t c = 0; c < 30; ++c) waves.push_back({burst, short_job});
  return waves;
}

struct RunResult {
  std::uint64_t rank_seconds = 0;
  double tail_jct = 0.0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t served = 0;
  std::size_t clients_done = 0;
  std::size_t n_clients = 0;
};

RunResult run_shape(const bench::BenchOptions& opts,
                    const std::vector<Wave>& waves, bool elastic) {
  auto tree = std::make_unique<fs::NamespaceTree>();
  const auto dirs = fs::build_private_dirs(
      *tree, "job", static_cast<std::uint32_t>(waves.size()), kFilesPerDir);

  mds::ClusterParams cp;
  cp.n_mds = kPoolRanks;
  cp.mds_capacity_iops = 2500.0;
  cp.migration.hot_abort_iops = 2500.0 / 8.0;
  // Both deployments journal: the fixed pool pays the steady-state append
  // cost, the elastic pool additionally pays a cold-start replay window
  // per activation — the comparison charges elasticity its full price.
  cp.journal.enabled = true;
  if (elastic) cp.initial_active = kFloorRanks;
  auto cluster = std::make_unique<mds::MdsCluster>(*tree, cp);

  sim::Simulation::Options so;
  so.max_ticks = opts.ticks;
  so.stop_when_done = true;
  if (elastic) {
    so.autoscaler.enabled = true;
    so.autoscaler.initial_active = kFloorRanks;
    so.autoscaler.min_ranks = kFloorRanks;
    so.autoscaler.max_ranks = kPoolRanks;
    // Agile policy: one-epoch streaks and no cooldown, so the pool tracks
    // a wave within tens of seconds instead of minutes.
    so.autoscaler.hysteresis_epochs = 1;
    so.autoscaler.cooldown_epochs = 0;
  }
  auto sim_ptr = std::make_unique<sim::Simulation>(
      std::move(tree), std::move(cluster), nullptr,
      sim::make_balancer(sim::BalancerKind::kLunule, cp), so,
      core::IfParams{.mds_capacity = cp.mds_capacity_iops});

  auto sampler = std::make_shared<ZipfSampler>(
      kFilesPerDir, zipf_exponent_for(0.2, 0.8, kFilesPerDir));
  Rng rng(opts.seed);
  for (std::size_t c = 0; c < waves.size(); ++c) {
    workloads::ClientParams p;
    p.max_ops_per_tick = kClientRate;
    p.start_tick = waves[c].start;
    sim_ptr->add_client(std::make_unique<workloads::Client>(
        static_cast<std::uint32_t>(c), p,
        std::make_unique<workloads::ZipfReadProgram>(
            dirs[c], kFilesPerDir, waves[c].requests, sampler,
            rng.fork(c))));
  }
  sim_ptr->run();

  RunResult r;
  r.rank_seconds = sim_ptr->rank_seconds();
  const auto& clients = sim_ptr->clients();
  for (std::size_t c = 0; c < clients.size(); ++c) {
    if (!clients[c]->done()) continue;
    ++r.clients_done;
    const double jct =
        static_cast<double>(clients[c]->completion_tick() - waves[c].start);
    r.tail_jct = std::max(r.tail_jct, jct);
  }
  r.n_clients = clients.size();
  r.scale_ups = sim_ptr->cluster().elasticity().activations;
  r.scale_downs = sim_ptr->cluster().elasticity().retirements;
  r.served = sim_ptr->cluster().total_served();
  return r;
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.3, /*ticks=*/1800);
  sim::ShapeChecker checks;

  TablePrinter table({"Traffic", "Pool", "rank-seconds", "tail JCT",
                      "scale-ups", "scale-downs", "done", "served ops"});
  struct Shape {
    const char* label;
    std::vector<Wave> waves;
  };
  const Shape shapes[] = {
      {"diurnal", diurnal_waves(opts)},
      {"flash crowd", flash_crowd_waves(opts)},
  };
  for (const Shape& shape : shapes) {
    const RunResult fixed = run_shape(opts, shape.waves, /*elastic=*/false);
    const RunResult elastic = run_shape(opts, shape.waves, /*elastic=*/true);
    for (const auto* row : {&fixed, &elastic}) {
      table.add_row({shape.label,
                     row == &fixed ? "fixed-16" : "elastic",
                     TablePrinter::fmt(row->rank_seconds),
                     TablePrinter::fmt(row->tail_jct, 0) + " s",
                     TablePrinter::fmt(row->scale_ups),
                     TablePrinter::fmt(row->scale_downs),
                     TablePrinter::fmt(row->clients_done) + "/" +
                         TablePrinter::fmt(row->n_clients),
                     TablePrinter::fmt(row->served)});
    }

    const std::string tag(shape.label);
    checks.expect(fixed.clients_done == fixed.n_clients &&
                      elastic.clients_done == elastic.n_clients,
                  tag + ": every client finishes on both pools");
    checks.expect(elastic.rank_seconds < fixed.rank_seconds,
                  tag + ": elastic pool is strictly cheaper in "
                        "rank-seconds than fixed-16");
    checks.expect(elastic.tail_jct <= fixed.tail_jct,
                  tag + ": ...at equal-or-better tail JCT");
    checks.expect(elastic.scale_ups > 0,
                  tag + ": the pool grew beyond its floor");
    checks.expect(elastic.served == fixed.served,
                  tag + ": both pools complete the same total work");
    checks.expect(fixed.scale_ups == 0 && fixed.scale_downs == 0,
                  tag + ": the fixed pool never scales (control)");
  }

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Elastic MDS pool vs fixed 16 ranks (Lunule balancer, "
                "journaled, rank-seconds billed per tick)");
  }
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
