// Journal overhead table: steady-state cost of the metadata journal.
//
// CephFS's MDLog is on the critical path of every mutation, so the first
// question about any journal model is what it costs when nothing crashes.
// This bench drives the metadata-intensive MD workload (every request is a
// create, the journal's worst case) through the same Lunule scenario three
// times — journal off, journal on at the default cost model, and journal on
// with an aggressive (5x append cost) model — and compares delivered
// metadata throughput.
//
// With append_cost_ops = c, a saturated rank settles at C / (1 + c) served
// ops per tick (each served op owes c ops of journal debt to the next
// tick), so the defaults (c = 0.04) predict ~3.8% steady-state overhead;
// the shape checks pin it under 5% and require the aggressive model to cost
// visibly more, which keeps the cost model honest in both directions.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

namespace lunule {
namespace {

struct Cell {
  std::string label;
  sim::ScenarioResult result;
  double rate = 0.0;  // served metadata ops per simulated second
};

int run(int argc, char** argv) {
  bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.25, /*ticks=*/600);
  sim::ShapeChecker checks;

  journal::JournalParams aggressive;
  aggressive.enabled = true;
  aggressive.append_cost_ops = 0.2;
  aggressive.segment_entries = 128;

  struct Variant {
    const char* label;
    bool enabled;
    journal::JournalParams params;
  };
  const Variant variants[] = {
      {"off", false, journal::JournalParams{}},
      {"defaults", true, journal::JournalParams{}},
      {"aggressive", true, aggressive},
  };

  std::vector<Cell> cells;
  for (const Variant& v : variants) {
    sim::ScenarioConfig cfg =
        opts.config(sim::WorkloadKind::kMd, sim::BalancerKind::kLunule);
    cfg.journal = v.params;
    cfg.journal.enabled = v.enabled;
    Cell cell;
    cell.label = v.label;
    cell.result = sim::run_scenario(cfg);
    opts.dump_trace(cell.result);
    cell.rate = static_cast<double>(cell.result.total_served) /
                static_cast<double>(std::max<Tick>(1, cell.result.end_tick));
    cells.push_back(std::move(cell));
  }
  const double base_rate = cells[0].rate;

  TablePrinter table({"journal", "served ops", "ops/s", "overhead",
                      "entries", "journal MB", "trimmed segs"});
  for (const Cell& c : cells) {
    const double overhead =
        base_rate > 0.0 ? 100.0 * (1.0 - c.rate / base_rate) : 0.0;
    table.add_row(
        {c.label, TablePrinter::fmt(c.result.total_served),
         TablePrinter::fmt(c.rate, 0),
         TablePrinter::fmt(overhead, 2) + "%",
         TablePrinter::fmt(c.result.journal_entries_appended),
         TablePrinter::fmt(
             static_cast<double>(c.result.journal_bytes_written) / (1024.0 *
                                                                    1024.0),
             2),
         TablePrinter::fmt(c.result.journal_segments_trimmed)});
  }
  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Steady-state journal overhead (MD workload, Lunule, no "
                "faults)");
  }

  const auto overhead_of = [&](const Cell& c) {
    return base_rate > 0.0 ? 1.0 - c.rate / base_rate : 0.0;
  };
  checks.expect(cells[0].result.journal_entries_appended == 0 &&
                    cells[0].result.journal_bytes_written == 0,
                "with the journal off, no journal traffic exists at all");
  checks.expect(cells[1].result.journal_entries_appended > 0 &&
                    cells[1].result.journal_bytes_written > 0,
                "with the journal on, every mutation pays journal traffic");
  checks.expect(cells[1].result.journal_segments_trimmed > 0,
                "checkpoints retire covered segments (bounded replay debt)");
  checks.expect(overhead_of(cells[1]) <= 0.05,
                "default journaling costs at most 5% of metadata "
                "throughput");
  checks.expect(overhead_of(cells[2]) > overhead_of(cells[1]),
                "a 5x append cost model costs visibly more (the cost knob "
                "is live)");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
