// Figure 12: dynamic adaptation under the Zipf workload.
//   (a) MDS cluster expansion: 4 MDSs at start, one added at minute 10 and
//       another at minute 20 — each newcomer absorbs load and the clustered
//       throughput rises (paper: 41k -> 51k -> +10%).
//   (b) client growth: 10 clients at start, +10 per phase — added load
//       lands on one MDS first and is immediately spread; in phase 1 the
//       cluster is lightly loaded and Lunule does NOT re-balance (benign
//       imbalance tolerated by the urgency term).
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "common/zipf.h"
#include "fs/builder.h"
#include "workloads/zipf_read.h"

namespace lunule {
namespace {

/// Builds a simulation with `n_clients` open-ended Zipf clients (their jobs
/// outlive the measurement window, like the paper's sustained-load runs).
std::unique_ptr<sim::Simulation> open_ended_zipf(
    const bench::BenchOptions& opts, std::size_t n_mds,
    std::size_t n_clients, Tick start_phase, double client_rate = 150.0) {
  auto tree = std::make_unique<fs::NamespaceTree>();
  const std::uint32_t files = 1000;
  const auto dirs = fs::build_private_dirs(
      *tree, "zipf", static_cast<std::uint32_t>(n_clients), files);
  mds::ClusterParams cp;
  cp.n_mds = n_mds;
  cp.mds_capacity_iops = 2500.0;
  cp.migration.hot_abort_iops = 2500.0 / 8.0;
  auto cluster = std::make_unique<mds::MdsCluster>(*tree, cp);

  sim::Simulation::Options so;
  so.max_ticks = opts.ticks;
  so.stop_when_done = false;
  auto sim_ptr = std::make_unique<sim::Simulation>(
      std::move(tree), std::move(cluster), nullptr,
      sim::make_balancer(sim::BalancerKind::kLunule, cp), so,
      core::IfParams{.mds_capacity = cp.mds_capacity_iops});

  auto sampler = std::make_shared<ZipfSampler>(
      files, zipf_exponent_for(0.2, 0.8, files));
  Rng rng(opts.seed);
  for (std::size_t c = 0; c < n_clients; ++c) {
    workloads::ClientParams p;
    p.max_ops_per_tick = client_rate;
    p.start_tick =
        start_phase > 0 ? static_cast<Tick>(c / 10) * start_phase : 0;
    sim_ptr->add_client(std::make_unique<workloads::Client>(
        static_cast<std::uint32_t>(c), p,
        std::make_unique<workloads::ZipfReadProgram>(
            dirs[c], files, /*requests=*/1u << 30, sampler,
            rng.fork(c))));
  }
  return sim_ptr;
}

int run_expansion(const bench::BenchOptions& opts,
                  sim::ShapeChecker& checks) {
  const Tick phase = opts.ticks / 3;
  auto sim_ptr = open_ended_zipf(opts, /*n_mds=*/4, opts.clients,
                                 /*start_phase=*/0);
  sim_ptr->schedule(phase, [](sim::Simulation& s) { s.cluster().add_server(); });
  sim_ptr->schedule(2 * phase,
                    [](sim::Simulation& s) { s.cluster().add_server(); });
  sim_ptr->run();

  const auto& m = sim_ptr->metrics();
  sim::print_series_bundle(std::cout,
                           "Figure 12(a): per-MDS IOPS, MDS added at each "
                           "phase boundary",
                           m.per_mds_iops(), opts.report);

  // Phase-average aggregate throughput.
  const std::size_t epochs_per_phase = m.epochs() / 3;
  double phase_avg[3] = {0, 0, 0};
  for (std::size_t p = 0; p < 3; ++p) {
    double acc = 0.0;
    for (std::size_t e = p * epochs_per_phase;
         e < (p + 1) * epochs_per_phase; ++e) {
      acc += m.aggregate_iops().at(e);
    }
    phase_avg[p] = acc / static_cast<double>(epochs_per_phase);
  }
  std::cout << "Aggregate IOPS per phase: " << phase_avg[0] << " -> "
            << phase_avg[1] << " -> " << phase_avg[2] << "\n";
  checks.expect(phase_avg[1] > 1.05 * phase_avg[0],
                "12a: adding MDS-5 raises clustered throughput");
  checks.expect(phase_avg[2] > 1.05 * phase_avg[1],
                "12a: adding MDS-6 raises it further (paper: +10%)");
  checks.expect(
      sim_ptr->cluster().server(4).total_served() > 0 &&
          sim_ptr->cluster().server(5).total_served() > 0,
      "12a: both added MDSs absorbed migrated load");
  return 0;
}

int run_client_growth(const bench::BenchOptions& opts,
                      sim::ShapeChecker& checks) {
  // 40 open-ended Zipf clients launched in four waves of 10.
  const Tick phase = opts.ticks / 4;
  // Light per-client rate: the first wave of 10 clients leaves every MDS
  // far below capacity, which the urgency term must classify as benign.
  auto sim_ptr = open_ended_zipf(opts, /*n_mds=*/5, /*n_clients=*/40,
                                 /*start_phase=*/phase,
                                 /*client_rate=*/40.0);

  // Probe the migrated-inode counter at the end of phase 1.
  std::uint64_t migrated_phase1 = 0;
  sim_ptr->schedule(phase - 1, [&](sim::Simulation& s) {
    migrated_phase1 = s.cluster().migration().total_migrated_inodes();
  });
  sim_ptr->run();

  const auto& m = sim_ptr->metrics();
  sim::print_series_bundle(std::cout,
                           "Figure 12(b): per-MDS IOPS, +10 clients per "
                           "phase",
                           m.per_mds_iops(), opts.report);

  const std::size_t epochs_per_phase = m.epochs() / 4;
  double phase_avg[4] = {0, 0, 0, 0};
  for (std::size_t p = 0; p < 4; ++p) {
    double acc = 0.0;
    for (std::size_t e = p * epochs_per_phase;
         e < (p + 1) * epochs_per_phase; ++e) {
      acc += m.aggregate_iops().at(e);
    }
    phase_avg[p] = acc / static_cast<double>(epochs_per_phase);
  }
  std::cout << "Aggregate IOPS per phase: " << phase_avg[0] << " / "
            << phase_avg[1] << " / " << phase_avg[2] << " / "
            << phase_avg[3] << "\n"
            << "Inodes migrated during the lightly-loaded phase 1: "
            << migrated_phase1 << "\n";

  checks.expect(migrated_phase1 == 0,
                "12b: no re-balance in phase 1 — 10 clients leave every "
                "MDS lightly loaded (urgency tolerates benign imbalance)");
  for (int p = 1; p < 4; ++p) {
    checks.expect(phase_avg[p] > phase_avg[p - 1] * 1.1,
                  "12b: throughput grows phase " + std::to_string(p) +
                      " -> " + std::to_string(p + 1) +
                      " as clients are added");
  }
  checks.expect(
      sim_ptr->cluster().migration().total_migrated_inodes() > 0,
      "12b: later phases do trigger re-balance (the control case)");
  return 0;
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.3, /*ticks=*/1800);
  sim::ShapeChecker checks;
  run_expansion(opts, checks);
  run_client_growth(opts, checks);
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
