// Microbenchmarks of Lunule's per-epoch computations (google-benchmark).
//
// The paper claims "no visible CPU utilization variance" when Lunule is
// enabled; these benchmarks quantify the cost of each component at realistic
// cluster and candidate-set sizes to substantiate that claim: everything
// here runs in microseconds per epoch, against a 10-second epoch period.
#include <benchmark/benchmark.h>

#include <vector>

#include "balancer/candidates.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "core/imbalance_factor.h"
#include "core/migration_initiator.h"
#include "core/pattern_analyzer.h"
#include "core/subtree_selector.h"
#include "fs/builder.h"
#include "mds/access_recorder.h"

namespace lunule {
namespace {

void BM_ImbalanceFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> loads(n);
  for (auto& l : loads) l = rng.next_double() * 2500.0;
  const core::IfParams params{.mds_capacity = 2500.0, .smoothness = 0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::imbalance_factor(loads, params));
  }
}
BENCHMARK(BM_ImbalanceFactor)->Arg(5)->Arg(16)->Arg(64);

void BM_RoleDecider(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<core::MdsLoadStat> stats(n);
  for (std::size_t i = 0; i < n; ++i) {
    stats[i].id = static_cast<MdsId>(i);
    stats[i].cld = rng.next_double() * 2500.0;
    stats[i].fld = stats[i].cld * (0.9 + 0.2 * rng.next_double());
  }
  const core::RoleDeciderParams params{.load_threshold = 0.0025,
                                       .epoch_capacity_cap = 1500.0};
  for (auto _ : state) {
    auto copy = stats;
    benchmark::DoNotOptimize(core::decide_roles(copy, params));
  }
}
BENCHMARK(BM_RoleDecider)->Arg(5)->Arg(16)->Arg(64);

void BM_ComputeMindex(benchmark::State& state) {
  balancer::Candidate c;
  c.visits_w = 4200;
  c.first_visits_w = 1800;
  c.recurrent_w = 2100;
  c.sibling_credit_w = 120.5;
  c.unvisited = 5200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_mindex(c));
  }
}
BENCHMARK(BM_ComputeMindex);

void BM_CandidateScan(benchmark::State& state) {
  // Candidate enumeration over a CNN-sized namespace (1000 leaf dirs).
  fs::NamespaceTree tree;
  fs::build_imagenet_like(tree, "cnn", 1000, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer::collect_candidates(tree, 0));
  }
}
BENCHMARK(BM_CandidateScan);

void BM_SubtreeSelect(benchmark::State& state) {
  fs::NamespaceTree tree;
  const auto dirs = fs::build_imagenet_like(tree, "cnn", 1000, 16);
  Rng rng(3);
  for (const DirId d : dirs) {
    fs::FragStats& f = tree.frag(d, 0);
    const auto v = static_cast<std::uint32_t>(rng.next_below(600));
    f.visits_window.push(v);
    f.recurrent_window.push(v / 2);
    f.first_visits_window.push(v / 2);
  }
  core::SelectorParams params;
  params.window_seconds = 60.0;
  const core::SubtreeSelector selector(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(tree, 0, 500.0));
  }
}
BENCHMARK(BM_SubtreeSelect);

void BM_RecordAccess(benchmark::State& state) {
  fs::NamespaceTree tree;
  const auto dirs = fs::build_private_dirs(tree, "w", 64, 4096);
  mds::AccessRecorder recorder(tree, mds::RecorderParams{}, Rng(4));
  Rng rng(5);
  EpochId epoch = 0;
  for (auto _ : state) {
    const DirId d = dirs[rng.next_below(dirs.size())];
    const auto i = static_cast<FileIndex>(rng.next_below(4096));
    benchmark::DoNotOptimize(recorder.record(d, i, epoch));
    ++epoch;
  }
}
BENCHMARK(BM_RecordAccess);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfSampler sampler(10000, 0.83);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace lunule

BENCHMARK_MAIN();
