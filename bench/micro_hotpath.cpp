// Hot-path microbenchmark: authority resolution, epoch close, and
// candidate collection with the hot-path optimisations on vs off, at
// 10k / 100k / 500k / 2M directories with a 1% hot set, plus the
// worker-pool scaling of the epoch-close fold at 1 / 2 / 4 shards
// (shards = 1 + pool workers, mirroring the sharded tick engine's
// sharded_ticks knob).
//
// Hand-rolled chrono timing (not google-benchmark): each phase is a paired
// A/B measurement of the same work both ways, and the [SHAPE-CHECK] gates
// are ratios, so the bench passes in Debug and Release alike.  The shard
// scaling gate additionally requires >= 4 hardware threads — on smaller
// hosts the rows are still measured and reported, but time-sliced threads
// cannot show wall-clock speedup, so the gate is skipped.  Emits
// machine-readable results as JSON (--json=PATH, default
// BENCH_hotpath.json in the working directory); scripts/bench_trajectory.sh
// runs it from a Release build and stores the JSON at the repo root.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "balancer/candidates.h"
#include "bench_common.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/worker_pool.h"
#include "fs/namespace_tree.h"
#include "mds/access_recorder.h"

namespace lunule {
namespace {

/// Depth of the directory chain the fan-out hangs from: uncached authority
/// resolution walks it on every lookup, the flat cache does not.
constexpr int kChainDepth = 32;
constexpr std::uint32_t kFilesPerDir = 4;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Builds a chain of kChainDepth dirs with `n_dirs` file-bearing leaf
/// directories fanned out under the last one; returns the leaf ids.
std::vector<DirId> build_fanout(fs::NamespaceTree& tree, std::size_t n_dirs) {
  DirId parent = tree.root();
  for (int i = 0; i < kChainDepth; ++i) parent = tree.add_dir(parent, "c");
  std::vector<DirId> leaves;
  leaves.reserve(n_dirs);
  for (std::size_t i = 0; i < n_dirs; ++i) {
    const DirId d = tree.add_dir(parent, "d");
    tree.add_files(d, kFilesPerDir);
    leaves.push_back(d);
  }
  return leaves;
}

/// Epoch-close cost at one shard count (1 shard = serial fold).
struct ShardRow {
  int shards = 1;
  double epoch_close_us = 0.0;
  double speedup_vs_1 = 1.0;
};

struct SizeResult {
  std::size_t dirs = 0;
  std::size_t hot_dirs = 0;
  double auth_cached_ns = 0.0;
  double auth_uncached_ns = 0.0;
  double auth_speedup = 0.0;
  double epoch_close_on_us = 0.0;
  double epoch_close_off_us = 0.0;
  double epoch_close_speedup = 0.0;
  std::size_t live_candidates = 0;
  int timed_epochs = 0;
  std::vector<ShardRow> shard_rows;
};

/// Random authority lookups over the fan-out, cache on vs off.
void bench_auth_lookup(SizeResult& r, std::size_t n_dirs) {
  fs::NamespaceTree tree;
  const std::vector<DirId> leaves = build_fanout(tree, n_dirs);
  // Pin a slice so resolution exercises both inherit and explicit paths.
  for (std::size_t i = 0; i < leaves.size(); i += 16) {
    tree.set_auth(leaves[i], static_cast<MdsId>(i % 5));
  }
  constexpr std::size_t kLookups = 200'000;
  std::int64_t sink = 0;
  for (const bool cached : {true, false}) {
    tree.set_auth_cache_enabled(cached);
    // Warm-up pass: the cached row measures steady-state hits, not the
    // one-time fill cost of a cold cache (and the uncached row gets the
    // same page/TLB warming so the comparison stays paired).
    Rng warm(11);
    for (std::size_t i = 0; i < kLookups; ++i) {
      sink += tree.auth_of(leaves[warm.next_below(leaves.size())]);
    }
    Rng rng(11);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < kLookups; ++i) {
      sink += tree.auth_of(leaves[rng.next_below(leaves.size())]);
    }
    const double ns = seconds_since(t0) * 1e9 / kLookups;
    (cached ? r.auth_cached_ns : r.auth_uncached_ns) = ns;
  }
  if (sink == -1) std::cout << "";  // keep the lookups observable
  r.auth_speedup = r.auth_uncached_ns / r.auth_cached_ns;
}

/// One epoch of synthetic load on the hot set + close + candidate
/// collection, with the optimisations on (lazy stats + live-set filter) vs
/// off (eager close + whole-namespace scan).
void bench_epoch_close(SizeResult& r, std::size_t n_dirs, int timed_epochs) {
  constexpr int kWarmEpochs = 6;
  const std::size_t stride = n_dirs / r.hot_dirs;
  for (const bool opts : {true, false}) {
    fs::NamespaceTree tree;
    const std::vector<DirId> leaves = build_fanout(tree, n_dirs);
    mds::RecorderParams params;
    params.sibling_credit_prob = 0.0;  // isolate the close/scan cost
    mds::AccessRecorder recorder(tree, params, Rng(23), /*lazy=*/opts);
    const std::vector<DirId>* live = opts ? &recorder.active_dirs() : nullptr;
    std::vector<balancer::Candidate> cands;
    double elapsed = 0.0;
    EpochId epoch = 0;
    for (int e = 0; e < kWarmEpochs + timed_epochs; ++e, ++epoch) {
      for (std::size_t h = 0; h < r.hot_dirs; ++h) {
        const DirId d = leaves[h * stride];
        recorder.record(d, static_cast<FileIndex>(e % kFilesPerDir), epoch);
        recorder.record(d, static_cast<FileIndex>((e + 1) % kFilesPerDir),
                        epoch);
      }
      const auto t0 = Clock::now();
      recorder.close_epoch();
      balancer::collect_candidates_into(cands, tree, /*owner=*/0, live);
      if (e >= kWarmEpochs) elapsed += seconds_since(t0);
    }
    const double us = elapsed * 1e6 / timed_epochs;
    (opts ? r.epoch_close_on_us : r.epoch_close_off_us) = us;
    if (opts) r.live_candidates = cands.size();
  }
  r.timed_epochs = timed_epochs;
  r.epoch_close_speedup = r.epoch_close_off_us / r.epoch_close_on_us;
}

/// Epoch close + candidate collection on the worker pool at 1 / 2 / 4
/// shards (the same per-chunk fold the sharded tick engine drives through
/// MdsCluster::close_epoch).  One tree serves all shard counts: every
/// epoch records and folds the same hot set, so after the warm-up the
/// per-epoch work is identical regardless of which pool executes it.
void bench_shard_scaling(SizeResult& r, std::size_t n_dirs,
                         int timed_epochs) {
  constexpr int kWarmEpochs = 6;
  const std::size_t stride = n_dirs / r.hot_dirs;
  fs::NamespaceTree tree;
  const std::vector<DirId> leaves = build_fanout(tree, n_dirs);
  mds::RecorderParams params;
  params.sibling_credit_prob = 0.0;
  mds::AccessRecorder recorder(tree, params, Rng(23), /*lazy=*/true);
  const std::vector<DirId>& live = recorder.active_dirs();
  std::vector<balancer::Candidate> cands;
  EpochId epoch = 0;
  const auto run_epochs = [&](int n, WorkerPool* pool) {
    double elapsed = 0.0;
    for (int e = 0; e < n; ++e, ++epoch) {
      for (std::size_t h = 0; h < r.hot_dirs; ++h) {
        const DirId d = leaves[h * stride];
        recorder.record(d, static_cast<FileIndex>(e % kFilesPerDir), epoch);
        recorder.record(d, static_cast<FileIndex>((e + 1) % kFilesPerDir),
                        epoch);
      }
      const auto t0 = Clock::now();
      recorder.close_epoch(pool);
      balancer::collect_candidates_into(cands, tree, /*owner=*/0, &live,
                                        pool);
      elapsed += seconds_since(t0);
    }
    return elapsed;
  };
  run_epochs(kWarmEpochs, nullptr);
  for (const int shards : {1, 2, 4}) {
    WorkerPool pool(static_cast<std::size_t>(shards - 1));
    ShardRow row;
    row.shards = shards;
    row.epoch_close_us =
        run_epochs(timed_epochs, &pool) * 1e6 / timed_epochs;
    row.speedup_vs_1 = r.shard_rows.empty()
                           ? 1.0
                           : r.shard_rows.front().epoch_close_us /
                                 row.epoch_close_us;
    r.shard_rows.push_back(row);
  }
}

SizeResult run_size(std::size_t n_dirs, int timed_epochs) {
  SizeResult r;
  r.dirs = n_dirs;
  r.hot_dirs = n_dirs / 100;
  bench_auth_lookup(r, n_dirs);
  bench_epoch_close(r, n_dirs, timed_epochs);
  bench_shard_scaling(r, n_dirs, timed_epochs);
  return r;
}

void write_json(const std::string& path, const std::vector<SizeResult>& rs) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  // The shard_scaling rows only mean anything on a host with real cores:
  // on a 1-thread machine the pool's workers time-slice one CPU and
  // speedup_vs_1 hovers around 1.0 (or below — context-switch overhead).
  // Stamp the host's thread count and whether the [SHAPE-CHECK] gate was
  // armed, and tag each row produced with the gate down as unarmed, so a
  // committed JSON can't be misread as a scaling regression and downstream
  // consumers (perf-smoke trend tooling) can drop those rows per-row
  // without consulting the top-level flag.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool armed = hw >= 4;
  out << "{\n  \"bench\": \"micro_hotpath\",\n  \"hw_threads\": " << hw
      << ",\n  \"shard_gate_armed\": " << (armed ? "true" : "false")
      << ",\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const SizeResult& r = rs[i];
    out << "    {\"dirs\": " << r.dirs << ", \"hot_dirs\": " << r.hot_dirs
        << ", \"auth_cached_ns\": " << r.auth_cached_ns
        << ", \"auth_uncached_ns\": " << r.auth_uncached_ns
        << ", \"auth_speedup\": " << r.auth_speedup
        << ", \"epoch_close_on_us\": " << r.epoch_close_on_us
        << ", \"epoch_close_off_us\": " << r.epoch_close_off_us
        << ", \"epoch_close_speedup\": " << r.epoch_close_speedup
        << ", \"live_candidates\": " << r.live_candidates
        << ", \"timed_epochs\": " << r.timed_epochs
        << ", \"shard_scaling\": [";
    for (std::size_t s = 0; s < r.shard_rows.size(); ++s) {
      const ShardRow& row = r.shard_rows[s];
      out << (s > 0 ? ", " : "") << "{\"shards\": " << row.shards
          << ", \"epoch_close_us\": " << row.epoch_close_us
          << ", \"speedup_vs_1\": " << row.speedup_vs_1
          << (armed ? "" : ", \"unarmed\": true") << "}";
    }
    out << "]}" << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "results written to " << path << "\n";
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) {
  using namespace lunule;
  Flags flags(argc, argv);
  const std::string json_path = flags.get("json", "BENCH_hotpath.json");
  flags.check_unused();

  std::vector<SizeResult> results;
  results.push_back(run_size(10'000, 40));
  results.push_back(run_size(100'000, 16));
  results.push_back(run_size(500'000, 8));
  results.push_back(run_size(2'000'000, 3));

  std::cout << "dirs      auth cached/uncached (ns)   epoch close on/off (us)"
               "   speedup\n";
  for (const SizeResult& r : results) {
    std::cout << r.dirs << "  " << r.auth_cached_ns << " / "
              << r.auth_uncached_ns << "  " << r.epoch_close_on_us << " / "
              << r.epoch_close_off_us << "  x" << r.epoch_close_speedup
              << "\n    shards:";
    for (const ShardRow& row : r.shard_rows) {
      std::cout << "  S=" << row.shards << " " << row.epoch_close_us
                << "us (x" << row.speedup_vs_1 << ")";
    }
    std::cout << "\n";
  }
  write_json(json_path, results);

  sim::ShapeChecker checks;
  checks.expect(results[0].epoch_close_speedup >= 1.5,
                "10k dirs: dirty-set close beats the whole-tree scan");
  checks.expect(results[1].epoch_close_speedup >= 5.0,
                "100k dirs / 1% hot: epoch close at least 5x faster");
  checks.expect(results[2].epoch_close_speedup >= 5.0,
                "500k dirs / 1% hot: epoch close at least 5x faster");
  checks.expect(results[3].epoch_close_speedup >= 5.0,
                "2M dirs / 1% hot: epoch close at least 5x faster");
  checks.expect(results[1].auth_speedup >= 1.0,
                "100k dirs: cached authority lookups no slower than the "
                "pin-chain walk");
  checks.expect(results[1].live_candidates <= 2 * results[1].hot_dirs,
                "live-set filter keeps the candidate set near the hot set");
  // Wall-clock parallel speedup needs real cores; time-sliced threads on
  // small hosts make the ratio noise, so the gate only arms at >= 4.
  if (std::thread::hardware_concurrency() >= 4) {
    checks.expect(results[3].shard_rows.back().speedup_vs_1 >= 2.0,
                  "2M dirs: epoch close scales at least 2x from 1 to 4 "
                  "shards");
  } else {
    std::cout << "[SHAPE-CHECK] shard-scaling gate skipped: "
              << std::thread::hardware_concurrency()
              << " hardware threads (< 4)\n";
  }
  return bench::finish(checks);
}
