// Latency profile bench: per-operation metadata latency under the four
// balancers.
//
// The paper's Section 4 names latency among the performance implications
// of metadata load balance (alongside throughput and job completion time).
// In the closed-loop model, an operation's latency is the number of ticks
// until its authoritative MDS has capacity for it (1 = served the tick it
// was issued); balanced clusters keep the tail flat while a hotspot pushes
// the p99 up by orders of magnitude.
//
// --json=PATH additionally writes one machine-readable record per cell
// (mean/p50/p99/max latency + stall fraction); scripts/bench_trajectory.sh
// runs it from a Release build and stores the JSON as BENCH_latency.json at
// the repo root, which is committed so the latency trajectory is reviewable
// over time (CI's perf-smoke job uploads it as an artifact).
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/json_export.h"
#include "sim/parallel_runner.h"

namespace lunule {
namespace {

void write_json(const std::string& path,
                const std::vector<sim::ScenarioResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  sim::JsonWriter w(out);
  w.begin_object();
  w.field("bench", std::string_view("latency_profile"));
  w.key("cells");
  w.begin_array();
  for (const sim::ScenarioResult& r : results) {
    w.begin_object();
    w.field("workload", std::string_view(r.workload));
    w.field("balancer", std::string_view(r.balancer));
    w.field("mean_s", r.op_latency.mean());
    w.field("p50_s", r.op_latency.percentile(50));
    w.field("p99_s", r.op_latency.percentile(99));
    w.field("max_s", r.op_latency.max_value());
    w.field("stall_fraction", r.mean_stall_fraction);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  std::cout << "results written to " << path << "\n";
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.2, /*ticks=*/1200);
  sim::ShapeChecker checks;

  const sim::WorkloadKind workloads[] = {sim::WorkloadKind::kNlp,
                                         sim::WorkloadKind::kZipf};
  const sim::BalancerKind balancers[] = {
      sim::BalancerKind::kVanilla, sim::BalancerKind::kGreedySpill,
      sim::BalancerKind::kLunule};

  std::vector<sim::ScenarioConfig> configs;
  for (const auto w : workloads) {
    for (const auto b : balancers) configs.push_back(opts.config(w, b));
  }
  const auto results = sim::run_scenarios(configs);

  TablePrinter table({"Workload", "Balancer", "mean (s)", "p50 (s)",
                      "p99 (s)", "max (s)", "stall fraction"});
  double nlp_vanilla_p99 = 0.0;
  double nlp_lunule_p99 = 0.0;
  double zipf_vanilla_stall = 0.0;
  double zipf_lunule_stall = 0.0;
  std::size_t cell = 0;
  for (const auto w : workloads) {
    for (const auto b : balancers) {
      const sim::ScenarioResult& r = results[cell++];
      table.add_row({r.workload, r.balancer,
                     TablePrinter::fmt(r.op_latency.mean(), 2),
                     TablePrinter::fmt(r.op_latency.percentile(50), 1),
                     TablePrinter::fmt(r.op_latency.percentile(99), 1),
                     TablePrinter::fmt(r.op_latency.max_value(), 0),
                     TablePrinter::fmt(r.mean_stall_fraction, 3)});
      if (w == sim::WorkloadKind::kNlp) {
        if (b == sim::BalancerKind::kVanilla) {
          nlp_vanilla_p99 = r.op_latency.percentile(99);
        }
        if (b == sim::BalancerKind::kLunule) {
          nlp_lunule_p99 = r.op_latency.percentile(99);
        }
      } else {
        if (b == sim::BalancerKind::kVanilla) {
          zipf_vanilla_stall = r.mean_stall_fraction;
        }
        if (b == sim::BalancerKind::kLunule) {
          zipf_lunule_stall = r.mean_stall_fraction;
        }
      }
    }
  }

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Per-op metadata latency (ticks until served) and client "
                "stall fractions");
  }
  if (!opts.json_path.empty()) write_json(opts.json_path, results);

  checks.expect(nlp_lunule_p99 <= nlp_vanilla_p99,
                "NLP: Lunule's p99 op latency no worse than Vanilla's "
                "(hotspot removal flattens the tail)");
  checks.expect(zipf_lunule_stall <= zipf_vanilla_stall * 1.05,
                "Zipf: Lunule's clients stall no more than Vanilla's");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
