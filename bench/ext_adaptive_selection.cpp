// Extension bench: the dynamic subtree-selection strategy (the paper's
// stated future work, Section 4.1).
//
// Lunule-Adaptive closes the loop between the migration-validity audit and
// the selector's per-decision budget: invalid migrations shrink the
// budget, trustworthy ones grow it.  On CNN (where stale signals are the
// danger) the adaptive variant must at least preserve Lunule's balance and
// keep its migration validity no worse; on Zipf (steady signals) it must
// not regress either.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/adaptive_lunule.h"

namespace lunule {
namespace {

struct Cell {
  sim::ScenarioResult result;
  std::size_t final_budget = 0;
};

Cell run_adaptive(const bench::BenchOptions& opts, sim::WorkloadKind w) {
  sim::ScenarioConfig cfg = opts.config(w, sim::BalancerKind::kLunule);
  core::AdaptiveParams p;
  p.base = core::LunuleParams::for_cluster(sim::cluster_params_for(cfg));
  auto balancer = std::make_unique<core::AdaptiveLunuleBalancer>(p);
  const auto* handle = balancer.get();
  auto sim = sim::make_scenario_with_balancer(cfg, std::move(balancer));
  sim->run();

  Cell cell;
  cell.final_budget = handle->current_max_subtrees();
  cell.result.workload = std::string(sim::workload_name(w));
  cell.result.balancer = "Lunule-Adaptive";
  cell.result.mean_if = sim->metrics().mean_if(3);
  cell.result.total_served = sim->cluster().total_served();
  cell.result.end_tick = sim->end_tick();
  cell.result.valid_migration_fraction =
      sim->cluster().audit().valid_fraction();
  cell.result.migrations_completed =
      sim->cluster().migration().migrations_completed();
  return cell;
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.2, /*ticks=*/1500);
  sim::ShapeChecker checks;

  TablePrinter table({"Workload", "Balancer", "mean IF", "sustained IOPS",
                      "valid migrations", "final budget"});
  for (const sim::WorkloadKind w :
       {sim::WorkloadKind::kCnn, sim::WorkloadKind::kZipf}) {
    const sim::ScenarioResult fixed =
        sim::run_scenario(opts.config(w, sim::BalancerKind::kLunule));
    const Cell adaptive = run_adaptive(opts, w);

    auto sustained = [](const sim::ScenarioResult& r) {
      return static_cast<double>(r.total_served) /
             std::max<double>(1.0, static_cast<double>(r.end_tick));
    };
    table.add_row({fixed.workload, fixed.balancer,
                   TablePrinter::fmt(fixed.mean_if, 3),
                   TablePrinter::fmt(sustained(fixed), 0),
                   TablePrinter::fmt(fixed.valid_migration_fraction, 2),
                   "-"});
    table.add_row({adaptive.result.workload, adaptive.result.balancer,
                   TablePrinter::fmt(adaptive.result.mean_if, 3),
                   TablePrinter::fmt(sustained(adaptive.result), 0),
                   TablePrinter::fmt(
                       adaptive.result.valid_migration_fraction, 2),
                   TablePrinter::fmt(
                       static_cast<std::uint64_t>(adaptive.final_budget))});

    checks.expect(
        adaptive.result.mean_if < fixed.mean_if * 1.25,
        adaptive.result.workload +
            ": adaptive selection does not regress balance materially");
    checks.expect(adaptive.result.valid_migration_fraction >=
                      fixed.valid_migration_fraction * 0.9,
                  adaptive.result.workload +
                      ": adaptive selection keeps migration validity");
  }

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Dynamic subtree selection (the paper's future work)");
  }
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
