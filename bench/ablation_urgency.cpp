// Ablation bench: the urgency term of the Imbalance Factor (Eq. 2-3).
//
// Scenario: a lightly-loaded cluster (few low-rate Zipf clients, all of
// whose directories start on one MDS).  The relative load dispersion is
// maximal (one-hot), but every MDS is far below capacity, so re-balancing
// buys nothing and only costs migration traffic — the paper's "benign
// imbalance" (Fig. 12b phase 1).
//
//   with-urgency    — Lunule as shipped: IF = CoV/sqrt(n) * U stays below
//                     the trigger threshold, zero migrations
//   without-urgency — the trigger uses the normalized CoV alone (as a
//                     CoV-only model would): migrations fire immediately
//
// A second, saturated scenario checks the control direction: with real
// pressure both variants act, so urgency only suppresses *benign* cases.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/lunule_balancer.h"

namespace lunule {
namespace {

struct Outcome {
  std::uint64_t migrated = 0;
  double mean_if = 0.0;
};

Outcome run_case(const bench::BenchOptions& opts, double client_rate,
                 bool with_urgency) {
  sim::ScenarioConfig cfg =
      opts.config(sim::WorkloadKind::kZipf, sim::BalancerKind::kLunule);
  cfg.n_clients = 10;
  cfg.client_rate = client_rate;
  cfg.stop_when_done = false;
  core::LunuleParams p =
      core::LunuleParams::for_cluster(sim::cluster_params_for(cfg));
  if (!with_urgency) {
    // Degenerate capacity: u = l_max / C becomes huge, so U ~ 1 for any
    // non-zero load and the trigger reduces to the normalized CoV — the
    // "linear model" behaviour the paper abandons.
    p.if_params.mds_capacity = 1e-6;
  }
  auto sim = sim::make_scenario_with_balancer(
      cfg, std::make_unique<core::LunuleBalancer>(p));
  sim->run();
  return Outcome{
      .migrated = sim->cluster().migration().total_migrated_inodes(),
      .mean_if = sim->metrics().mean_if(2)};
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.1, /*ticks=*/600);
  sim::ShapeChecker checks;

  // Benign: 10 clients at 40 ops/s = 400 IOPS on a 2500-IOPS MDS.
  const Outcome benign_with = run_case(opts, 40.0, /*with_urgency=*/true);
  const Outcome benign_without = run_case(opts, 40.0, false);
  // Harmful: the same 10 clients at full tilt saturate the hot MDS.
  const Outcome hot_with = run_case(opts, 400.0, true);
  const Outcome hot_without = run_case(opts, 400.0, false);

  TablePrinter table({"scenario", "variant", "migrated inodes", "mean IF"});
  table.add_row({"benign (16% load)", "with urgency",
                 TablePrinter::fmt(benign_with.migrated),
                 TablePrinter::fmt(benign_with.mean_if, 3)});
  table.add_row({"benign (16% load)", "without urgency",
                 TablePrinter::fmt(benign_without.migrated),
                 TablePrinter::fmt(benign_without.mean_if, 3)});
  table.add_row({"harmful (saturated)", "with urgency",
                 TablePrinter::fmt(hot_with.migrated),
                 TablePrinter::fmt(hot_with.mean_if, 3)});
  table.add_row({"harmful (saturated)", "without urgency",
                 TablePrinter::fmt(hot_without.migrated),
                 TablePrinter::fmt(hot_without.mean_if, 3)});
  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Urgency-term ablation (Eq. 2)");
  }

  checks.expect(benign_with.migrated == 0,
                "urgency suppresses re-balance under benign imbalance");
  checks.expect(benign_without.migrated > 0,
                "a CoV-only trigger migrates even when no MDS is stressed");
  checks.expect(hot_with.migrated > 0,
                "urgency does not suppress genuinely harmful imbalance");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
