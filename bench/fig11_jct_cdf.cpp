// Figure 11: CDF of client job completion times under the mixed workload,
// Vanilla vs Lunule (data access enabled, 100 clients).
//
// Shapes reproduced: Lunule shifts the CDF left, most visibly at the tail
// (paper: 99th-percentile JCT 1.42x better than Vanilla; ~80% of clients
// done while Vanilla needs ~25% longer).
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.15, /*ticks=*/15000);
  sim::ShapeChecker checks;

  sim::ScenarioConfig v_cfg =
      opts.config(sim::WorkloadKind::kMixed, sim::BalancerKind::kVanilla);
  v_cfg.data_enabled = true;
  sim::ScenarioConfig l_cfg = v_cfg;
  l_cfg.balancer = sim::BalancerKind::kLunule;

  const sim::ScenarioResult vanilla = sim::run_scenario(v_cfg);
  const sim::ScenarioResult lunule = sim::run_scenario(l_cfg);

  checks.expect(vanilla.clients_done == vanilla.n_clients,
                "Vanilla completes all jobs within the horizon");
  checks.expect(lunule.clients_done == lunule.n_clients,
                "Lunule completes all jobs within the horizon");

  TablePrinter table({"percentile", "Vanilla JCT (s)", "Lunule JCT (s)",
                      "improvement"});
  for (const double p : {10.0, 25.0, 50.0, 75.0, 80.0, 90.0, 95.0, 99.0}) {
    const double v = percentile(vanilla.jct_seconds, p);
    const double l = percentile(lunule.jct_seconds, p);
    table.add_row({TablePrinter::fmt(p, 0) + "%", TablePrinter::fmt(v, 0),
                   TablePrinter::fmt(l, 0), TablePrinter::pct(l / v - 1.0)});
  }
  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Figure 11: job completion time CDF, mixed workload");
  }

  const double v99 = percentile(vanilla.jct_seconds, 99);
  const double l99 = percentile(lunule.jct_seconds, 99);
  checks.expect(l99 < v99,
                "Mixed: Lunule improves the 99th-percentile JCT "
                "(paper: 1.42x)");
  checks.expect(percentile(lunule.jct_seconds, 80) <=
                    percentile(vanilla.jct_seconds, 80),
                "Mixed: Lunule's 80th-percentile JCT no worse than "
                "Vanilla's");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
