// Section 3.4 overhead table: control-plane traffic and memory cost of
// Lunule's statistics, compared against the vanilla N-to-N heartbeat.
//
// Paper reference points: ~0.94 KB/epoch extra out-bound per non-primary
// MDS; ~14.1 KB/epoch in-bound at the primary of a 16-MDS cluster; ~1.37%
// extra memory for the per-inode tracking structures; no visible CPU cost.
#include <iostream>

#include "bench_common.h"
#include "common/assert.h"
#include "common/table.h"
#include "core/lunule_balancer.h"
#include "fs/dirfrag.h"
#include "fs/file_state.h"
#include "mds/messages.h"
#include "sim/json_export.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/1.0, /*ticks=*/0);
  sim::ShapeChecker checks;

  TablePrinter net({"cluster size", "Lunule out/MDS", "Lunule in@primary",
                    "Lunule total", "Vanilla total (N-to-N)"});
  for (const std::size_t n : {5u, 8u, 16u}) {
    const auto lun = mds::lunule_traffic(n);
    const auto van = mds::vanilla_traffic(n);
    net.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(n)),
                 TablePrinter::fmt(lun.per_mds_out_bytes / 1024.0, 2) + " KB",
                 TablePrinter::fmt(lun.primary_in_bytes / 1024.0, 2) + " KB",
                 TablePrinter::fmt(lun.total_bytes / 1024.0, 2) + " KB",
                 TablePrinter::fmt(van.total_bytes / 1024.0, 2) + " KB"});
  }
  if (opts.report.csv) {
    net.print_csv(std::cout);
  } else {
    net.print(std::cout,
              "Per-epoch control-plane traffic (epoch = 10 s)");
  }

  // Live measurement: run a real Lunule scenario and read the Load
  // Monitor's accumulated control-plane bytes (reports + decisions).
  {
    sim::ScenarioConfig cfg =
        opts.config(sim::WorkloadKind::kZipf, sim::BalancerKind::kLunule);
    cfg.n_clients = 40;
    cfg.scale = 0.05;
    cfg.max_ticks = 600;
    auto sim = sim::make_scenario(cfg);
    sim->run();
    if (cfg.capture_trace) {
      sim::ScenarioResult traced;
      traced.trace_json = sim::trace_to_json(sim->cluster().trace());
      opts.dump_trace(traced);
    }
    const auto* lunule =
        dynamic_cast<const core::LunuleBalancer*>(&sim->balancer());
    LUNULE_CHECK(lunule != nullptr);
    const double per_epoch =
        static_cast<double>(lunule->monitor().total_bytes()) /
        static_cast<double>(
            std::max<std::uint64_t>(1, lunule->monitor().epochs_collected()));
    std::cout << "Measured over a live 5-MDS Zipf run: "
              << TablePrinter::fmt(per_epoch / 1024.0, 2)
              << " KB/epoch of control-plane traffic across "
              << lunule->monitor().epochs_collected() << " epochs\n";
    // Decision messages bill each exporter only for its own assignment
    // list, so the live total stays inside the 5-MDS analytic bound
    // (lunule_traffic(5).total_bytes ~= 7.67 KB) rather than merely the
    // 16-MDS regime.
    checks.expect(per_epoch < 8.0 * 1024.0,
                  "measured live control-plane traffic stays within the "
                  "5-MDS analytic per-epoch bound");
  }

  const auto l16 = mds::lunule_traffic(16);
  checks.expect(l16.per_mds_out_bytes >= 900 &&
                    l16.per_mds_out_bytes <= 1100,
                "non-primary out-bound ~0.94 KB per epoch (paper)");
  checks.expect(l16.primary_in_bytes >= 13000 &&
                    l16.primary_in_bytes <= 16000,
                "16-MDS primary in-bound ~14.1 KB per epoch (paper)");
  checks.expect(l16.total_bytes < mds::vanilla_traffic(16).total_bytes,
                "Lunule's N-to-1 collection cheaper than vanilla N-to-N");

  // Memory model: per-inode tracking state vs a nominal in-memory inode.
  // CephFS CInode objects are on the order of kilobytes; we use a very
  // conservative 300-byte nominal in-memory inode so the reported overhead
  // is an upper bound.
  constexpr double kNominalInodeBytes = 300.0;
  const double per_file = sizeof(fs::FileState);
  const double per_frag = sizeof(fs::FragStats);
  TablePrinter memory({"structure", "bytes", "amortized per inode",
                       "relative overhead"});
  memory.add_row({"FileState (per inode)", TablePrinter::fmt(per_file, 0),
                  TablePrinter::fmt(per_file, 1),
                  TablePrinter::fmt(100.0 * per_file / kNominalInodeBytes,
                                    2) +
                      "%"});
  // One FragStats per dirfrag; amortize over a typical 1000-file dirfrag.
  memory.add_row({"FragStats (per dirfrag)", TablePrinter::fmt(per_frag, 0),
                  TablePrinter::fmt(per_frag / 1000.0, 3),
                  TablePrinter::fmt(
                      100.0 * (per_frag / 1000.0) / kNominalInodeBytes, 3) +
                      "%"});
  if (opts.report.csv) {
    memory.print_csv(std::cout);
  } else {
    memory.print(std::cout, "Memory overhead of Lunule's statistics");
  }
  checks.expect(per_file / kNominalInodeBytes < 0.0137 * 2,
                "per-inode tracking memory within 2x of the paper's "
                "1.37% overhead bound");
  checks.expect(per_file <= 8.0,
                "per-inode state stays within 8 bytes");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
