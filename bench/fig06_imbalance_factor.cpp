// Figure 6: imbalance factor over time for the five workloads under the
// four balancers (Vanilla, GreedySpill, Lunule-Light, Lunule).
//
// Shapes reproduced: GreedySpill is the worst (IF near 1 on scans);
// Vanilla handles Web well but fails CNN/NLP; Lunule achieves the lowest
// IF overall; Lunule-Light trails Lunule on the spatial workloads
// (CNN/NLP) but matches it on Zipf/Web/MD — the paper's ablation.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "sim/parallel_runner.h"
#include "common/table.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.2, /*ticks=*/1500);
  const sim::WorkloadKind workloads[] = {
      sim::WorkloadKind::kCnn, sim::WorkloadKind::kNlp,
      sim::WorkloadKind::kZipf, sim::WorkloadKind::kWeb,
      sim::WorkloadKind::kMd};
  const sim::BalancerKind balancers[] = {
      sim::BalancerKind::kVanilla, sim::BalancerKind::kGreedySpill,
      sim::BalancerKind::kLunuleLight, sim::BalancerKind::kLunule};

  sim::ShapeChecker checks;
  TablePrinter summary({"Workload", "Vanilla", "GreedySpill", "Lunule-Light",
                        "Lunule", "Lunule vs best baseline"});

  // The 20 cells are independent deterministic simulations: run them on
  // all cores.
  std::vector<sim::ScenarioConfig> configs;
  for (const sim::WorkloadKind w : workloads) {
    for (const sim::BalancerKind b : balancers) {
      configs.push_back(opts.config(w, b));
    }
  }
  const std::vector<sim::ScenarioResult> all = sim::run_scenarios(configs);

  std::size_t cell = 0;
  for (const sim::WorkloadKind w : workloads) {
    std::map<sim::BalancerKind, sim::ScenarioResult> results;
    std::vector<const TimeSeries*> series;
    std::vector<std::string> names;
    for (const sim::BalancerKind b : balancers) {
      results.emplace(b, all[cell++]);
      names.emplace_back(sim::balancer_name(b));
    }
    for (const sim::BalancerKind b : balancers) {
      series.push_back(&results.at(b).if_series);
    }
    sim::print_series_columns(
        std::cout,
        "Figure 6: IF over time, " + std::string(sim::workload_name(w)),
        series, names, /*seconds_per_sample=*/10.0, opts.report);

    const double vanilla = results.at(sim::BalancerKind::kVanilla).mean_if;
    const double greedy =
        results.at(sim::BalancerKind::kGreedySpill).mean_if;
    const double light =
        results.at(sim::BalancerKind::kLunuleLight).mean_if;
    const double lunule = results.at(sim::BalancerKind::kLunule).mean_if;
    const double best_baseline = std::min(vanilla, greedy);
    summary.add_row(
        {std::string(sim::workload_name(w)), TablePrinter::fmt(vanilla, 3),
         TablePrinter::fmt(greedy, 3), TablePrinter::fmt(light, 3),
         TablePrinter::fmt(lunule, 3),
         TablePrinter::pct(lunule / best_baseline - 1.0)});

    checks.expect(lunule < vanilla,
                  std::string(sim::workload_name(w)) +
                      ": Lunule mean IF below Vanilla");
    checks.expect(lunule < greedy,
                  std::string(sim::workload_name(w)) +
                      ": Lunule mean IF below GreedySpill");
    if (w == sim::WorkloadKind::kCnn || w == sim::WorkloadKind::kNlp) {
      checks.expect(lunule < light,
                    std::string(sim::workload_name(w)) +
                        ": workload-aware selection beats -Light on "
                        "spatial workloads (ablation)");
      checks.expect(greedy > 2.0 * lunule,
                    std::string(sim::workload_name(w)) +
                        ": GreedySpill far behind Lunule on scans");
    }
  }

  if (opts.report.csv) {
    summary.print_csv(std::cout);
  } else {
    summary.print(std::cout, "Figure 6 summary: mean IF (lower is better)");
  }
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
