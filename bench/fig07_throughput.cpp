// Figure 7: aggregate metadata throughput over time for the five workloads
// under the four balancers.
//
// Shapes reproduced: throughput correlates negatively with the IF values of
// Figure 6; Lunule delivers the largest gains on the spatial workloads
// (paper: 2.81x over Vanilla on CNN, 1.76x on NLP) and smaller-but-positive
// gains on the skewed ones (Zipf/Web/MD).
#include <iostream>
#include <map>

#include "bench_common.h"
#include "sim/parallel_runner.h"
#include "common/table.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.2, /*ticks=*/1500);
  const sim::WorkloadKind workloads[] = {
      sim::WorkloadKind::kCnn, sim::WorkloadKind::kNlp,
      sim::WorkloadKind::kZipf, sim::WorkloadKind::kWeb,
      sim::WorkloadKind::kMd};
  const sim::BalancerKind balancers[] = {
      sim::BalancerKind::kVanilla, sim::BalancerKind::kGreedySpill,
      sim::BalancerKind::kLunuleLight, sim::BalancerKind::kLunule};

  sim::ShapeChecker checks;
  TablePrinter summary({"Workload", "Vanilla", "GreedySpill", "Lunule-Light",
                        "Lunule", "Lunule vs Vanilla"});

  // The 20 cells are independent deterministic simulations: run them on
  // all cores.
  std::vector<sim::ScenarioConfig> configs;
  for (const sim::WorkloadKind w : workloads) {
    for (const sim::BalancerKind b : balancers) {
      configs.push_back(opts.config(w, b));
    }
  }
  const std::vector<sim::ScenarioResult> all = sim::run_scenarios(configs);
  for (const sim::ScenarioResult& r : all) opts.dump_trace(r);

  std::size_t cell = 0;
  for (const sim::WorkloadKind w : workloads) {
    std::map<sim::BalancerKind, sim::ScenarioResult> results;
    std::vector<const TimeSeries*> series;
    std::vector<std::string> names;
    for (const sim::BalancerKind b : balancers) {
      results.emplace(b, all[cell++]);
      names.emplace_back(sim::balancer_name(b));
    }
    for (const sim::BalancerKind b : balancers) {
      series.push_back(&results.at(b).aggregate_iops);
    }
    sim::print_series_columns(
        std::cout,
        "Figure 7: aggregate IOPS, " + std::string(sim::workload_name(w)),
        series, names, /*seconds_per_sample=*/10.0, opts.report);

    // Sustained throughput: ops served per second of run (robust against
    // different run lengths: faster balancers finish the fixed job sooner).
    auto sustained = [](const sim::ScenarioResult& r) {
      return static_cast<double>(r.total_served) /
             std::max<double>(1.0, static_cast<double>(r.end_tick));
    };
    const double vanilla = sustained(results.at(sim::BalancerKind::kVanilla));
    const double greedy =
        sustained(results.at(sim::BalancerKind::kGreedySpill));
    const double light =
        sustained(results.at(sim::BalancerKind::kLunuleLight));
    const double lunule = sustained(results.at(sim::BalancerKind::kLunule));
    summary.add_row(
        {std::string(sim::workload_name(w)), TablePrinter::fmt(vanilla, 0),
         TablePrinter::fmt(greedy, 0), TablePrinter::fmt(light, 0),
         TablePrinter::fmt(lunule, 0),
         TablePrinter::pct(lunule / vanilla - 1.0)});

    checks.expect(lunule >= vanilla * 0.98,
                  std::string(sim::workload_name(w)) +
                      ": Lunule sustained throughput at least matches "
                      "Vanilla");
    if (w == sim::WorkloadKind::kCnn || w == sim::WorkloadKind::kNlp) {
      checks.expect(lunule > vanilla * 1.15,
                    std::string(sim::workload_name(w)) +
                        ": Lunule clearly ahead on spatial workloads "
                        "(paper: 1.76-2.81x)");
      checks.expect(lunule > light * 1.05,
                    std::string(sim::workload_name(w)) +
                        ": workload-aware selection contributes beyond "
                        "the IF model alone");
    }
  }

  if (opts.report.csv) {
    summary.print_csv(std::cout);
  } else {
    summary.print(std::cout,
                  "Figure 7 summary: sustained metadata IOPS "
                  "(higher is better)");
  }
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
