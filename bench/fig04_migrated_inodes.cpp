// Figure 4: cumulative migrated inodes over time under the built-in
// balancer, for Filebench-Zipf (a) and CNN preprocessing (b).
//
// Shapes reproduced: on Zipf a large early migration wave is followed by
// further waves (the amounts are decided exporter-only and overshoot); on
// CNN inodes are migrated *continuously* even though the load never leaves
// the hot MDS — most migrated inodes are never visited again (invalid
// migrations by the heat-based selector).
#include <iostream>

#include "bench_common.h"

namespace lunule {
namespace {

/// Fraction of migrated inodes that were already fully visited at the end
/// of the run — a proxy for the paper's "vast majority of migrated inodes
/// are never visited after their migration" finding.
double dead_fraction(const sim::ScenarioResult& r) {
  // The migrated series is cumulative; compare against the total visits the
  // run produced on non-origin MDSs: if migration had been useful, served
  // work would have spread.  We use the simpler signal: how much of the
  // migrated volume happened after the midpoint while imbalance persisted.
  const auto& mig = r.migrated_inodes.values();
  if (mig.empty() || mig.back() == 0.0) return 0.0;
  const double mid = mig[mig.size() / 2];
  return (mig.back() - mid) / mig.back();
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.25, /*ticks=*/1500);
  sim::ShapeChecker checks;

  const sim::ScenarioResult zipf = sim::run_scenario(
      opts.config(sim::WorkloadKind::kZipf, sim::BalancerKind::kVanilla));
  const sim::ScenarioResult cnn = sim::run_scenario(
      opts.config(sim::WorkloadKind::kCnn, sim::BalancerKind::kVanilla));
  const sim::ScenarioResult cnn_lunule = sim::run_scenario(
      opts.config(sim::WorkloadKind::kCnn, sim::BalancerKind::kLunule));

  sim::print_series_columns(
      std::cout, "Figure 4: cumulative migrated inodes, Vanilla",
      {&zipf.migrated_inodes, &cnn.migrated_inodes}, {"Zipf", "CNN"},
      static_cast<double>(10), opts.report);

  std::cout << "Zipf: " << zipf.migrated_total << " inodes in "
            << zipf.migrations_completed << " migrations\n"
            << "CNN : " << cnn.migrated_total << " inodes in "
            << cnn.migrations_completed << " migrations\n"
            << "CNN migration validity (subtree used at its new home): "
            << "Vanilla " << cnn.valid_migration_fraction << " ("
            << cnn.wasted_migration_inodes << " inodes wasted), Lunule "
            << cnn_lunule.valid_migration_fraction << "\n";

  checks.expect(zipf.migrated_total > 0,
                "Zipf/Vanilla migrates a large inode volume");
  checks.expect(cnn.migrations_completed > zipf.migrations_completed,
                "CNN/Vanilla performs many more (small, invalid) "
                "migrations than Zipf");
  // Continuous migration on CNN: migration volume keeps growing in the
  // second half of the run even though the hot MDS never drains.
  checks.expect(dead_fraction(cnn) > 0.2,
                "CNN/Vanilla keeps migrating throughout the run "
                "(eager but invalid migration)");
  // The paper's root cause: "the vast majority of migrated inodes are
  // never visited after their migration" — and the fix: Lunule's selector
  // exports subtrees that WILL be used.
  checks.expect(cnn.valid_migration_fraction < 0.6,
                "CNN/Vanilla: a large share of migrations is invalid "
                "(paper: the vast majority never visited again)");
  checks.expect(cnn_lunule.valid_migration_fraction >
                    cnn.valid_migration_fraction,
                "CNN/Lunule: mIndex selection migrates subtrees that are "
                "actually used afterwards");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
