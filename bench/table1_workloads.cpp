// Table 1: workload characteristics.
//
// Regenerates the paper's workload description table from the actual
// generators: namespace shape (directories, files), the fraction of file
// system operations that are metadata operations, and the access pattern
// class each workload exhibits (measured as the recurrent-visit fraction
// of its op stream).
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

namespace lunule {
namespace {

struct Row {
  sim::WorkloadKind kind;
  double paper_meta_ratio;
  const char* scenario;
};

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.1, /*ticks=*/600,
                                 /*clients=*/8);
  const Row rows[] = {
      {sim::WorkloadKind::kCnn, 0.781, "Machine Learning"},
      {sim::WorkloadKind::kNlp, 0.928, "Machine Learning"},
      {sim::WorkloadKind::kWeb, 0.572, "Traditional"},
      {sim::WorkloadKind::kZipf, 0.500, "Traditional"},
      {sim::WorkloadKind::kMd, 1.000, "Traditional"},
  };

  TablePrinter table({"Workload", "Scenario", "Meta_op ratio (paper)",
                      "Meta_op ratio (measured)", "Dirs", "Files",
                      "Recurrent visits"});
  sim::ShapeChecker checks;

  for (const Row& row : rows) {
    sim::ScenarioConfig cfg = opts.config(row.kind, sim::BalancerKind::kNone);
    cfg.data_enabled = true;
    cfg.data_capacity = 1e9;  // never the bottleneck: measure pure ratios
    auto s = sim::make_scenario(cfg);
    s->run();

    std::uint64_t meta = 0;
    std::uint64_t data = 0;
    for (const auto& c : s->clients()) {
      meta += c->meta_ops_completed();
      data += c->data_ops_completed();
    }
    const double measured =
        static_cast<double>(meta) / static_cast<double>(meta + data);

    // Namespace census (excluding the root and mount point).
    const std::size_t dirs = s->tree().dir_count() - 2;
    const std::uint64_t files =
        s->tree().total_inodes() - s->tree().dir_count();

    // Recurrence census over all files touched.
    std::uint64_t recurrent = 0;
    std::uint64_t visits = 0;
    for (DirId d = 0; d < s->tree().dir_count(); ++d) {
      for (const auto& frag : s->tree().frags(d)) {
        visits += frag.total_visits;
        recurrent += frag.recurrent_window.window_sum();
      }
    }
    const double recur_hint =
        visits > 0 ? static_cast<double>(recurrent) /
                         static_cast<double>(visits)
                   : 0.0;

    table.add_row({std::string(sim::workload_name(row.kind)), row.scenario,
                   TablePrinter::fmt(row.paper_meta_ratio * 100.0, 1) + "%",
                   TablePrinter::fmt(measured * 100.0, 1) + "%",
                   TablePrinter::fmt(static_cast<std::uint64_t>(dirs)),
                   TablePrinter::fmt(files),
                   TablePrinter::fmt(recur_hint * 100.0, 1) + "%"});
    checks.expect(std::abs(measured - row.paper_meta_ratio) < 0.05,
                  std::string(sim::workload_name(row.kind)) +
                      " measured meta-op ratio within 5% of Table 1");
  }

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Table 1: five evaluated workloads");
  }
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
