// Figure 2: per-MDS share of total metadata requests under the built-in
// CephFS balancer for the five workloads (five-MDS cluster).
//
// The paper's findings this bench regenerates: the imbalance exists in all
// workloads; CNN is the worst case, with one MDS handling ~90% of all
// requests (22-220x the others); Zipf is the most balanced, with the two
// busiest MDSs together handling ~55%.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.2, /*ticks=*/1500);
  const sim::WorkloadKind kinds[] = {
      sim::WorkloadKind::kCnn, sim::WorkloadKind::kNlp,
      sim::WorkloadKind::kWeb, sim::WorkloadKind::kZipf,
      sim::WorkloadKind::kMd};

  TablePrinter table({"Workload", "MDS-1", "MDS-2", "MDS-3", "MDS-4",
                      "MDS-5", "max/min"});
  sim::ShapeChecker checks;
  double cnn_max_share = 0.0;

  for (const sim::WorkloadKind kind : kinds) {
    const sim::ScenarioResult r =
        sim::run_scenario(opts.config(kind, sim::BalancerKind::kVanilla));
    std::uint64_t total = 0;
    for (const std::uint64_t s : r.total_served_per_mds) total += s;
    std::vector<std::string> row{std::string(sim::workload_name(kind))};
    std::uint64_t lo = total;
    std::uint64_t hi = 0;
    for (const std::uint64_t s : r.total_served_per_mds) {
      row.push_back(TablePrinter::fmt(
                        100.0 * static_cast<double>(s) /
                            static_cast<double>(total),
                        1) +
                    "%");
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    const double ratio = static_cast<double>(hi) /
                         std::max<double>(1.0, static_cast<double>(lo));
    row.push_back(TablePrinter::fmt(ratio, 1) + "x");
    table.add_row(std::move(row));

    checks.expect(ratio >= 1.5,
                  std::string(sim::workload_name(kind)) +
                      ": request imbalance exists under Vanilla "
                      "(max/min >= 1.5x)");
    if (kind == sim::WorkloadKind::kCnn) {
      cnn_max_share = static_cast<double>(hi) / static_cast<double>(total);
      checks.expect(ratio >= 2.0,
                    "CNN is heavily skewed (max/min >= 2x; the paper's "
                    "testbed reports 22-220x — see EXPERIMENTS.md on why "
                    "the closed-loop simulator mutes this extreme)");
    }
  }
  checks.expect(cnn_max_share >= 0.3,
                "CNN: one MDS handles far beyond its fair 20% share "
                "(paper: 90.3%)");

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Figure 2: metadata request distribution, Vanilla, 5 MDSs");
  }
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
