// Extension bench: the asynchronous metadata update path (sync vs async
// journal completion) under NLP and Zipf with journal-stall faults.
//
// In the synchronous journal mode every mutation's append and every group
// commit are charged to the rank's foreground IOPS budget, so journal cost
// rides directly on op latency; a stalled journal device backpressures
// creates as soon as the un-flushed backlog hits the cap.  The async mode
// (docs/JOURNAL.md) acknowledges mutations at in-memory apply and charges
// journal IOPS to a background durability lane, only throttling the
// foreground once the backlog crosses the high-water mark — the trade the
// AsyncFS direction makes: a bounded, documented crash-loss window in
// exchange for a flat latency tail.
//
// Journal costs here are deliberately heavier than the defaults (a slow
// journal device, ~0.5 foreground ops per append in sync mode) so the two
// completion modes separate visibly at bench scale; both sides of each
// workload run the identical schedule otherwise (same seed, same stalls).
//
// --json=PATH writes one machine-readable record per cell.  CI's sanitizer
// smoke runs this bench under LUNULE_VALIDATE=1, which turns on the epoch
// invariant checker — including section 9's async backlog / prefix-
// consistency / counter-agreement audits.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "sim/json_export.h"

namespace lunule {
namespace {

constexpr Tick kStallTick = 80;

struct Cell {
  std::string workload;
  bool async = false;
  sim::ScenarioResult r;
};

void write_json(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  sim::JsonWriter w(out);
  w.begin_object();
  w.field("bench", std::string_view("ext_async_journal"));
  w.key("cells");
  w.begin_array();
  for (const Cell& c : cells) {
    w.begin_object();
    w.field("workload", std::string_view(c.workload));
    w.field("mode", std::string_view(c.async ? "async" : "sync"));
    w.field("p50_s", c.r.op_latency.percentile(50));
    w.field("p99_s", c.r.op_latency.percentile(99));
    w.field("max_s", c.r.op_latency.max_value());
    w.field("stall_fraction", c.r.mean_stall_fraction);
    w.field("total_served", c.r.total_served);
    w.field("clients_done", static_cast<std::uint64_t>(c.r.clients_done));
    w.field("journal_entries_appended", c.r.journal_entries_appended);
    w.field("async_acked", c.r.journal_async_acked);
    w.field("async_throttle_ticks", c.r.journal_async_throttle_ticks);
    w.field("acked_lost_entries", c.r.journal_acked_lost_entries);
    w.field("dependency_violations", c.r.journal_dependency_violations);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  std::cout << "results written to " << path << "\n";
}

int run(int argc, char** argv) {
  bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.2, /*ticks=*/2500,
                                 /*clients=*/60);
  sim::ShapeChecker checks;

  // MD (mdtest) is the create-every-op workload the async path targets:
  // every op appends, so sync mode pays the append debt on every serve.
  // It is open-ended, so it shows up as a throughput gap at equal window.
  // Zipf is closed (both modes complete the same op total), nearly
  // append-free, and feels the journal only through the group-commit
  // flush debt — that is where the equal-work p99 comparison lives.
  const sim::WorkloadKind workloads[] = {sim::WorkloadKind::kMd,
                                         sim::WorkloadKind::kZipf};

  std::vector<Cell> cells;
  for (const auto wk : workloads) {
    for (const bool async : {false, true}) {
      sim::ScenarioConfig cfg = opts.config(wk, sim::BalancerKind::kLunule);
      // Demand sits between the two modes' effective capacities: sync pays
      // journal debt (per-append cost plus one tick's worth of capacity
      // per group commit — a slow journal device) on the foreground lane,
      // async keeps the foreground clear, so only the sync side runs
      // capacity-bound and queues.  The per-client rate is kept low so
      // head-of-line blocking is a visible share of each client's op
      // stream — that is what moves the p99, latency being counted per op
      // from first attempt to serve.  Everything is derived from the
      // demand so the shapes hold at smoke sizes too.
      cfg.n_clients = opts.clients * 2;  // more clients, lower rate each
      cfg.client_rate = 12.0;
      const double demand_per_rank =
          cfg.client_rate * static_cast<double>(cfg.n_clients) /
          static_cast<double>(cfg.n_mds);
      cfg.mds_capacity_iops = demand_per_rank * 1.25;
      cfg.journal.enabled = true;
      cfg.journal.flush_interval_ticks = 3;  // trailing group commit
      cfg.journal.append_cost_ops = 0.5;     // slow journal device...
      cfg.journal.flush_cost_ops = cfg.mds_capacity_iops;  // ...per commit
      cfg.journal.max_unflushed_entries = 1200;
      cfg.journal.async_mode = async;
      // Above the ~3-tick steady-state backlog, below the refuse cap: the
      // throttle only bites when the device actually stalls.
      cfg.journal.async_high_water_entries = 1000;
      // The same device stall hits both modes mid-run: sync eats it as
      // foreground backpressure, async rides it out on the backlog until
      // the high-water mark throttles.
      const Tick stall_ticks = std::min<Tick>(60, opts.ticks / 6);
      cfg.faults.journal_stall(/*m=*/0, kStallTick, stall_ticks);
      cfg.faults.journal_stall(/*m=*/1, kStallTick + stall_ticks / 2,
                               stall_ticks);
      const sim::ScenarioResult r = sim::run_scenario(cfg);
      opts.dump_trace(r);
      cells.push_back({std::string(sim::workload_name(wk)), async, r});
    }
  }

  TablePrinter table({"Workload", "mode", "p50 (s)", "p99 (s)", "max (s)",
                      "stall fraction", "served", "acked", "throttled"});
  for (const Cell& c : cells) {
    table.add_row({c.workload, c.async ? "async" : "sync",
                   TablePrinter::fmt(c.r.op_latency.percentile(50), 1),
                   TablePrinter::fmt(c.r.op_latency.percentile(99), 1),
                   TablePrinter::fmt(c.r.op_latency.max_value(), 0),
                   TablePrinter::fmt(c.r.mean_stall_fraction, 3),
                   TablePrinter::fmt(c.r.total_served),
                   TablePrinter::fmt(c.r.journal_async_acked),
                   TablePrinter::fmt(c.r.journal_async_throttle_ticks)});
  }
  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Async metadata update path: per-op latency sync vs async "
                "journal completion (journal device stalls mid-run)");
  }
  if (!opts.json_path.empty()) write_json(opts.json_path, cells);

  // Cell layout: [MD sync, MD async, Zipf sync, Zipf async].
  bool tail_gate_armed = false;
  bool tail_improved_somewhere = false;
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const sim::ScenarioResult& sync = cells[i].r;
    const sim::ScenarioResult& async = cells[i + 1].r;
    checks.expect(sync.total_served > 0 && async.total_served > 0,
                  cells[i].workload + ": both modes serve the workload");
    checks.expect(sync.journal_entries_appended > 0 &&
                      async.journal_entries_appended > 0,
                  cells[i].workload + ": both modes journal mutations");
    checks.expect(sync.journal_async_acked == 0 &&
                      sync.journal_async_throttle_ticks == 0,
                  cells[i].workload +
                      ": sync mode reports no async activity");
    checks.expect(async.journal_async_acked ==
                      async.journal_entries_appended,
                  cells[i].workload +
                      ": async mode acknowledges every append at apply");
    checks.expect(async.journal_dependency_violations == 0,
                  cells[i].workload +
                      ": async replay audit finds no dependency violations");
    checks.expect(async.journal_acked_lost_entries == 0,
                  cells[i].workload +
                      ": no crash in the plan, so nothing acked is lost");
    // The headline claim: at equal completed work, decoupling completion
    // from durability strictly flattens the latency tail on at least one
    // workload (both must finish, so served totals are conserved).
    const bool both_done = sync.clients_done == sync.n_clients &&
                           async.clients_done == async.n_clients;
    if (both_done && async.total_served == sync.total_served) {
      tail_gate_armed = true;  // an equal-completed-work pair exists
      if (async.op_latency.percentile(99) < sync.op_latency.percentile(99)) {
        tail_improved_somewhere = true;
      }
    }
    checks.expect(async.mean_stall_fraction <=
                      sync.mean_stall_fraction * 1.05 + 1e-9,
                  cells[i].workload +
                      ": async clients stall no more than sync clients");
  }
  // The headline gate needs an equal-completed-work pair to compare; smoke
  // sizes (CI sanitizer runs with tiny --ticks) cannot finish a closed
  // workload, so there the rows are informational and the gate stands down
  // (same convention as micro_hotpath's shard-scaling gate).
  if (tail_gate_armed) {
    checks.expect(tail_improved_somewhere,
                  "async p99 strictly beats sync at equal completed ops on "
                  "at least one workload");
  }
  // MD never completes (open-ended creates), so it speaks through
  // throughput instead: with every op paying append debt, moving the
  // journal off the foreground must serve strictly more creates in the
  // same window.
  checks.expect(cells[1].r.total_served > cells[0].r.total_served,
                "MD: async mode serves strictly more creates than sync in "
                "the same window");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
