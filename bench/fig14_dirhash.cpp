// Figure 14: the Dir-Hash baseline in detail on the Web workload.
//   (a) inode placement is nearly uniform across the 5 MDSs, yet
//   (b) the runtime request load is skewed and never re-balances, and
//   Dir-Hash inflates path-traversal forwards (paper: 98% more) because
//   sibling directories scatter across MDSs, destroying locality.
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/simulation.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.15, /*ticks=*/900);
  sim::ShapeChecker checks;

  // Run Dir-Hash and keep the simulation alive for the inode census.
  sim::ScenarioConfig hash_cfg =
      opts.config(sim::WorkloadKind::kWeb, sim::BalancerKind::kDirHash);
  auto hash_sim = sim::make_scenario(hash_cfg);
  hash_sim->run();

  const auto census = hash_sim->tree().inodes_per_mds(hash_cfg.n_mds);
  TablePrinter placement({"MDS", "inodes", "share", "requests", "share"});
  std::vector<double> inode_shares;
  std::vector<double> request_shares;
  std::uint64_t inode_total = 0;
  std::uint64_t req_total = 0;
  for (std::size_t m = 0; m < census.size(); ++m) {
    inode_total += census[m];
    req_total +=
        hash_sim->cluster().server(static_cast<MdsId>(m)).total_served();
  }
  for (std::size_t m = 0; m < census.size(); ++m) {
    const auto reqs =
        hash_sim->cluster().server(static_cast<MdsId>(m)).total_served();
    placement.add_row(
        {"MDS-" + std::to_string(m + 1), TablePrinter::fmt(census[m]),
         TablePrinter::fmt(100.0 * static_cast<double>(census[m]) /
                               static_cast<double>(inode_total),
                           1) +
             "%",
         TablePrinter::fmt(reqs),
         TablePrinter::fmt(100.0 * static_cast<double>(reqs) /
                               static_cast<double>(req_total),
                           1) +
             "%"});
    inode_shares.push_back(static_cast<double>(census[m]));
    request_shares.push_back(static_cast<double>(reqs));
  }
  if (opts.report.csv) {
    placement.print_csv(std::cout);
  } else {
    placement.print(std::cout,
                    "Figure 14: Dir-Hash inode vs request distribution, "
                    "Web workload");
  }

  const double inode_cov = coefficient_of_variation(inode_shares);
  const double request_cov = coefficient_of_variation(request_shares);
  std::cout << "inode-placement CoV " << inode_cov
            << " vs request-load CoV " << request_cov << "\n";
  checks.expect(inode_cov < 0.25,
                "14a: static hashing places inodes almost uniformly");
  checks.expect(request_cov > 1.5 * inode_cov,
                "14b: the request load is far more skewed than the "
                "placement (static hashing cannot adapt)");

  // Forward comparison against Lunule and Vanilla.
  const std::uint64_t hash_forwards = hash_sim->cluster().total_forwards();
  const sim::ScenarioResult lunule = sim::run_scenario(
      opts.config(sim::WorkloadKind::kWeb, sim::BalancerKind::kLunule));
  const sim::ScenarioResult vanilla = sim::run_scenario(
      opts.config(sim::WorkloadKind::kWeb, sim::BalancerKind::kVanilla));
  TablePrinter forwards({"Balancer", "forwards", "vs Dir-Hash"});
  forwards.add_row({"Dir-Hash", TablePrinter::fmt(hash_forwards), "-"});
  forwards.add_row({"Lunule", TablePrinter::fmt(lunule.total_forwards),
                    TablePrinter::pct(
                        static_cast<double>(lunule.total_forwards) /
                            static_cast<double>(hash_forwards) -
                        1.0)});
  forwards.add_row({"Vanilla", TablePrinter::fmt(vanilla.total_forwards),
                    TablePrinter::pct(
                        static_cast<double>(vanilla.total_forwards) /
                            static_cast<double>(hash_forwards) -
                        1.0)});
  if (opts.report.csv) {
    forwards.print_csv(std::cout);
  } else {
    forwards.print(std::cout, "Request forwards (locality destruction)");
  }
  checks.expect(hash_forwards > lunule.total_forwards &&
                    hash_forwards > vanilla.total_forwards,
                "Dir-Hash produces the most forwards (paper: +98%)");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
