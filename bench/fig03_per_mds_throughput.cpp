// Figure 3: per-MDS metadata throughput over time under the built-in
// balancer, for Filebench-Zipf (a) and CNN preprocessing (b).
//
// Shapes reproduced: on Zipf the load sloshes between MDSs over time
// (ping-pong); on CNN the load essentially never leaves one MDS — only a
// single server is actively working at any moment.
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"

namespace lunule {
namespace {

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.25, /*ticks=*/1500);
  sim::ShapeChecker checks;

  // (a) Filebench-Zipf.
  {
    const sim::ScenarioResult r = sim::run_scenario(
        opts.config(sim::WorkloadKind::kZipf, sim::BalancerKind::kVanilla));
    sim::print_series_bundle(std::cout,
                             "Figure 3(a): per-MDS IOPS, Zipf, Vanilla",
                             r.per_mds_iops, opts.report);
    // Ping-pong signal: some MDS both exceeds 60% of the cluster-mean peak
    // and later drops below 25% of its own peak while the run is still hot.
    bool ping_pong = false;
    for (std::size_t m = 0; m < r.per_mds_iops.count(); ++m) {
      const auto& series = r.per_mds_iops.at(m);
      const double peak = series.maximum();
      if (peak < 100.0) continue;
      // Scan the middle half of the run for a deep valley after the peak.
      std::size_t peak_at = 0;
      for (std::size_t i = 0; i < series.size(); ++i) {
        if (series.at(i) == peak) peak_at = i;
      }
      for (std::size_t i = peak_at + 1; i + series.size() / 4 < series.size();
           ++i) {
        if (series.at(i) < 0.25 * peak) {
          ping_pong = true;
          break;
        }
      }
    }
    checks.expect(ping_pong,
                  "Zipf/Vanilla: at least one MDS's load collapses after "
                  "peaking (ping-pong effect)");
  }

  // (b) CNN preprocessing.
  {
    const sim::ScenarioResult r = sim::run_scenario(
        opts.config(sim::WorkloadKind::kCnn, sim::BalancerKind::kVanilla));
    sim::print_series_bundle(std::cout,
                             "Figure 3(b): per-MDS IOPS, CNN, Vanilla",
                             r.per_mds_iops, opts.report);
    // Hot-MDS dominance: the busiest MDS carries most of the cluster's
    // work over the whole run.
    std::uint64_t total = 0;
    std::uint64_t hi = 0;
    for (const std::uint64_t s : r.total_served_per_mds) {
      total += s;
      hi = std::max(hi, s);
    }
    checks.expect(static_cast<double>(hi) / static_cast<double>(total) >=
                      0.3,
                  "CNN/Vanilla: one MDS stays saturated far beyond its "
                  "fair 20% share for the whole run");
  }
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
