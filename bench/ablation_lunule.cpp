// Ablation bench: each of Lunule's design choices is switched off in turn
// and the damage is measured, substantiating the design rationale of
// DESIGN.md §4b and of the paper's Section 3.
//
//   full          — Lunule as shipped
//   no-urgency    — IF reduces to normalized CoV (U forced to ~1 by a huge
//                   smoothness midpoint shift is not expressible, so we set
//                   the trigger on the raw CoV via capacity -> 0+): the
//                   balancer churns at light load
//   no-lag        — the migration-pipeline budget is lifted (in-flight
//                   backlog ignored): over-commitment / ping-pong
//   no-sibling    — the Pattern Analyzer's sibling-correlation credits are
//                   disabled: cold future subtrees become invisible and
//                   scan workloads balance worse
//   heat-select   — Lunule-Light (IF model + CephFS heat selection), the
//                   paper's own ablation
//
// Workloads: CNN (spatial) and Zipf (temporal) — the two regimes the
// components specialize in.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/lunule_balancer.h"

namespace lunule {
namespace {

struct Variant {
  const char* name;
  /// Mutates the Lunule parameters (and/or the scenario) for the ablation.
  void (*tweak)(core::LunuleParams&, sim::ScenarioConfig&);
};

sim::ScenarioResult run_variant(const bench::BenchOptions& opts,
                                sim::WorkloadKind workload,
                                const Variant& variant) {
  sim::ScenarioConfig cfg = opts.config(workload, sim::BalancerKind::kLunule);
  core::LunuleParams p =
      core::LunuleParams::for_cluster(sim::cluster_params_for(cfg));
  variant.tweak(p, cfg);
  auto sim = sim::make_scenario_with_balancer(
      cfg, std::make_unique<core::LunuleBalancer>(p));
  sim->run();

  sim::ScenarioResult r;
  r.workload = std::string(sim::workload_name(workload));
  r.balancer = variant.name;
  r.total_served = sim->cluster().total_served();
  r.migrated_total = sim->cluster().migration().total_migrated_inodes();
  r.migrations_completed = sim->cluster().migration().migrations_completed();
  r.end_tick = sim->end_tick();
  r.mean_if = sim->metrics().mean_if(3);
  return r;
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, /*scale=*/0.2, /*ticks=*/1500);
  sim::ShapeChecker checks;

  const Variant variants[] = {
      {"full", [](core::LunuleParams&, sim::ScenarioConfig&) {}},
      {"no-lag-awareness",
       [](core::LunuleParams& p, sim::ScenarioConfig&) {
         // Ignore the in-flight backlog entirely and let every epoch
         // re-commit a full pipeline (the vanilla balancer's mistake).
         p.min_pipeline_fraction = 0.0;
         p.selector.inode_cap = 1u << 30;
       }},
      {"no-sibling-credits",
       [](core::LunuleParams&, sim::ScenarioConfig& cfg) {
         // Disable the spatial-locality correlation signal at the source.
         cfg.sibling_credit_prob = 0.0;
       }},
      {"heat-selection (Lunule-Light)",
       [](core::LunuleParams& p, sim::ScenarioConfig&) {
         p.workload_aware = false;
       }},
  };

  TablePrinter table({"Workload", "Variant", "mean IF", "sustained IOPS",
                      "migrated inodes"});
  double cnn_full_if = 0.0;
  double cnn_nosib_if = 0.0;
  double zipf_full_mig = 0.0;
  double zipf_nolag_mig = 0.0;
  double zipf_full_if = 0.0;
  double zipf_nolag_if = 0.0;

  for (const sim::WorkloadKind w :
       {sim::WorkloadKind::kCnn, sim::WorkloadKind::kZipf}) {
    for (const Variant& v : variants) {
      const sim::ScenarioResult r = run_variant(opts, w, v);
      const double sustained =
          static_cast<double>(r.total_served) /
          std::max<double>(1.0, static_cast<double>(r.end_tick));
      table.add_row({r.workload, r.balancer, TablePrinter::fmt(r.mean_if, 3),
                     TablePrinter::fmt(sustained, 0),
                     TablePrinter::fmt(r.migrated_total)});
      if (w == sim::WorkloadKind::kCnn) {
        if (std::string(v.name) == "full") cnn_full_if = r.mean_if;
        if (std::string(v.name) == "no-sibling-credits") {
          cnn_nosib_if = r.mean_if;
        }
      } else {
        if (std::string(v.name) == "full") {
          zipf_full_mig = static_cast<double>(r.migrated_total);
          zipf_full_if = r.mean_if;
        }
        if (std::string(v.name) == "no-lag-awareness") {
          zipf_nolag_mig = static_cast<double>(r.migrated_total);
          zipf_nolag_if = r.mean_if;
        }
      }
    }
  }

  if (opts.report.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Lunule component ablation");
  }

  checks.expect(cnn_full_if < cnn_nosib_if,
                "CNN: sibling-correlation credits improve scan balance "
                "(without them, cold future subtrees are invisible)");
  checks.expect(zipf_nolag_mig > 1.2 * zipf_full_mig ||
                    zipf_nolag_if > zipf_full_if,
                "Zipf: dropping lag awareness causes over-migration or "
                "worse balance");
  return bench::finish(checks);
}

}  // namespace
}  // namespace lunule

int main(int argc, char** argv) { return lunule::run(argc, argv); }
